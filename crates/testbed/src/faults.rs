//! Deterministic fault injection for the long-term campaign.
//!
//! The paper's two-year campaign was not clean: boards dropped off the I2C
//! bus, power cycles were missed, and months carry unequal measurement
//! counts. This module models those degradations as an explicit, seed-keyed
//! [`FaultPlan`]: board brownouts (whole evaluation windows of missing
//! power-ups), I2C NACK/corruption bursts, stuck-at cell clusters, and
//! per-layer clock skew.
//!
//! # Determinism
//!
//! Fault decisions are **stateless**: every probabilistic draw is a pure
//! function of `(campaign seed, board, window, read, channel, attempt)`
//! ([`fault_roll`]), computed with a SplitMix64-style finalizer that never
//! touches a board's main [`pufbits::PufRng`] stream. Three properties
//! follow directly:
//!
//! * **thread independence** — a board's fault trajectory does not depend on
//!   scheduling, so faulted output is byte-identical for any `--threads`;
//! * **resume cleanliness** — nothing needs checkpointing: replaying a
//!   window after a [`pufchk/1`](crate::store::checkpoint) resume re-derives
//!   the same decisions;
//! * **zero-fault identity** — an empty plan takes none of the fault paths
//!   and draws nothing, so its record stream is byte-identical to a run
//!   without any plan at all.
//!
//! Plans are parsed from a small JSON spec via the workspace parser:
//!
//! ```
//! use puftestbed::faults::FaultPlan;
//!
//! let plan = FaultPlan::parse_json(r#"{
//!     "brownouts":     [{"board": 3, "from_window": 2, "until_window": 4}],
//!     "i2c_bursts":    [{"from_window": 1, "until_window": 1, "nack_rate": 0.5}],
//!     "stuck_clusters":[{"board": 0, "cell": 16, "len": 8, "value": true, "from_window": 3}],
//!     "clock_skew":    [{"layer": 1, "skew_s": 0.25}]
//! }"#)?;
//! assert!(!plan.is_empty());
//! assert!(plan.browned_out(puftestbed::BoardId(3), 2));
//! assert!(!plan.browned_out(puftestbed::BoardId(2), 2));
//! # Ok::<(), puftestbed::faults::FaultPlanError>(())
//! ```

use crate::board::BoardId;
use crate::store::checkpoint::Fnv;
use crate::store::json::{self, JsonValue, ParseJsonError};
use pufbits::BitVec;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// A window span of missing power-ups for one board (or all boards).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Brownout {
    /// Affected board (`None` = every board; a rack-level power loss).
    pub board: Option<u8>,
    /// First affected evaluation window (0-based month index), inclusive.
    pub from_window: u32,
    /// Last affected evaluation window, inclusive.
    pub until_window: u32,
}

/// A burst of elevated I2C fault rates over a window span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct I2cBurst {
    /// Affected board (`None` = every board; a bus-level disturbance).
    pub board: Option<u8>,
    /// First affected evaluation window, inclusive.
    pub from_window: u32,
    /// Last affected evaluation window, inclusive.
    pub until_window: u32,
    /// Per-attempt NACK probability added during the burst.
    pub nack_rate: f64,
    /// Per-attempt corruption probability added during the burst.
    pub corruption_rate: f64,
}

/// A cluster of cells stuck at a fixed value from some window on
/// (permanent damage — e.g. a failed column driver).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StuckCluster {
    /// Affected board.
    pub board: u8,
    /// First stuck cell index within the read window.
    pub cell: u32,
    /// Number of consecutive stuck cells.
    pub len: u32,
    /// The value the cells are stuck at.
    pub value: bool,
    /// First evaluation window the damage is present in (and ever after).
    pub from_window: u32,
}

/// A constant clock skew applied to one layer's read-out timestamps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerSkew {
    /// The affected layer (0 or 1 in the paper's rig).
    pub layer: u8,
    /// Skew in seconds added to every timestamp of that layer.
    pub skew_s: f64,
}

/// A deterministic schedule of campaign faults. See the [module docs](self)
/// for the determinism contract and the JSON spec.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Scheduled brownouts.
    pub brownouts: Vec<Brownout>,
    /// Scheduled I2C fault bursts.
    pub i2c_bursts: Vec<I2cBurst>,
    /// Stuck-at cell clusters.
    pub stuck_clusters: Vec<StuckCluster>,
    /// Per-layer clock skews.
    pub clock_skew: Vec<LayerSkew>,
}

/// Error loading or validating a [`FaultPlan`].
#[derive(Debug)]
pub enum FaultPlanError {
    /// The spec file could not be read.
    Io(io::Error),
    /// The spec is not well-formed JSON.
    Json(ParseJsonError),
    /// The spec is JSON but not a valid plan (wrong types, rates outside
    /// `[0, 1]`, inverted window spans, unknown sections).
    Invalid(String),
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::Io(e) => write!(f, "cannot read fault plan: {e}"),
            FaultPlanError::Json(e) => write!(f, "fault plan is not valid json: {e}"),
            FaultPlanError::Invalid(msg) => write!(f, "invalid fault plan: {msg}"),
        }
    }
}

impl Error for FaultPlanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FaultPlanError::Io(e) => Some(e),
            FaultPlanError::Json(e) => Some(e),
            FaultPlanError::Invalid(_) => None,
        }
    }
}

impl From<io::Error> for FaultPlanError {
    fn from(e: io::Error) -> Self {
        FaultPlanError::Io(e)
    }
}

impl From<ParseJsonError> for FaultPlanError {
    fn from(e: ParseJsonError) -> Self {
        FaultPlanError::Json(e)
    }
}

impl FaultPlan {
    /// Returns `true` if the plan schedules nothing — the campaign then
    /// takes none of the fault paths and its output is byte-identical to a
    /// run without a plan.
    pub fn is_empty(&self) -> bool {
        self.brownouts.is_empty()
            && self.i2c_bursts.is_empty()
            && self.stuck_clusters.is_empty()
            && self.clock_skew.is_empty()
    }

    /// Parses a plan from its JSON spec. Every section is optional; an
    /// empty object `{}` is the zero-fault plan.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::Json`] for malformed JSON and
    /// [`FaultPlanError::Invalid`] for a well-formed spec that is not a
    /// valid plan (wrong types, out-of-range rates, inverted spans,
    /// unknown sections).
    pub fn parse_json(spec: &str) -> Result<Self, FaultPlanError> {
        let value = json::parse(spec)?;
        let Some(entries) = value.as_object() else {
            return Err(FaultPlanError::Invalid(
                "top level must be an object".into(),
            ));
        };
        let mut plan = FaultPlan::default();
        for (key, section) in entries {
            match key.as_str() {
                "brownouts" => {
                    for (i, item) in array_of(section, "brownouts")?.iter().enumerate() {
                        plan.brownouts.push(parse_brownout(item, i)?);
                    }
                }
                "i2c_bursts" => {
                    for (i, item) in array_of(section, "i2c_bursts")?.iter().enumerate() {
                        plan.i2c_bursts.push(parse_burst(item, i)?);
                    }
                }
                "stuck_clusters" => {
                    for (i, item) in array_of(section, "stuck_clusters")?.iter().enumerate() {
                        plan.stuck_clusters.push(parse_cluster(item, i)?);
                    }
                }
                "clock_skew" => {
                    for (i, item) in array_of(section, "clock_skew")?.iter().enumerate() {
                        plan.clock_skew.push(parse_skew(item, i)?);
                    }
                }
                other => {
                    return Err(FaultPlanError::Invalid(format!(
                        "unknown section `{other}`"
                    )));
                }
            }
        }
        Ok(plan)
    }

    /// Loads and parses a plan file.
    ///
    /// # Errors
    ///
    /// Returns [`FaultPlanError::Io`] if the file cannot be read, plus the
    /// conditions of [`parse_json`](Self::parse_json).
    pub fn load(path: &Path) -> Result<Self, FaultPlanError> {
        Self::parse_json(&fs::read_to_string(path)?)
    }

    /// A stable 64-bit hash of the plan (FNV-1a over every field in order).
    /// Feeds the campaign's config hash so a resume under a changed plan is
    /// refused; an empty plan contributes nothing, keeping existing
    /// checkpoints valid.
    pub fn stable_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.bytes(b"puffaults/1");
        h.u64(self.brownouts.len() as u64);
        for b in &self.brownouts {
            hash_board(&mut h, b.board);
            h.u64(u64::from(b.from_window));
            h.u64(u64::from(b.until_window));
        }
        h.u64(self.i2c_bursts.len() as u64);
        for b in &self.i2c_bursts {
            hash_board(&mut h, b.board);
            h.u64(u64::from(b.from_window));
            h.u64(u64::from(b.until_window));
            h.f64(b.nack_rate);
            h.f64(b.corruption_rate);
        }
        h.u64(self.stuck_clusters.len() as u64);
        for c in &self.stuck_clusters {
            h.u64(u64::from(c.board));
            h.u64(u64::from(c.cell));
            h.u64(u64::from(c.len));
            h.u64(u64::from(c.value));
            h.u64(u64::from(c.from_window));
        }
        h.u64(self.clock_skew.len() as u64);
        for s in &self.clock_skew {
            h.u64(u64::from(s.layer));
            h.f64(s.skew_s);
        }
        h.finish()
    }

    /// Whether `board` is browned out for the whole of window `window`.
    pub fn browned_out(&self, board: BoardId, window: u32) -> bool {
        self.brownouts.iter().any(|b| {
            b.board.is_none_or(|id| id == board.0)
                && (b.from_window..=b.until_window).contains(&window)
        })
    }

    /// The extra I2C fault rates in force for `board` during `window`, or
    /// `None` when no burst applies. Overlapping bursts combine by taking
    /// the maximum of each rate.
    pub fn burst_rates(&self, board: BoardId, window: u32) -> Option<(f64, f64)> {
        let mut rates: Option<(f64, f64)> = None;
        for b in &self.i2c_bursts {
            let applies = b.board.is_none_or(|id| id == board.0)
                && (b.from_window..=b.until_window).contains(&window);
            if applies {
                let (nack, corrupt) = rates.unwrap_or((0.0, 0.0));
                rates = Some((nack.max(b.nack_rate), corrupt.max(b.corruption_rate)));
            }
        }
        rates
    }

    /// Forces the stuck cells of `board` (as of `window`) into `readout`,
    /// returning the number of cells forced. Out-of-range cluster cells are
    /// clamped to the read-out width.
    pub fn apply_stuck(&self, board: BoardId, window: u32, readout: &mut BitVec) -> u64 {
        let mut forced = 0u64;
        for c in &self.stuck_clusters {
            if c.board != board.0 || window < c.from_window {
                continue;
            }
            let start = c.cell as usize;
            let end = start.saturating_add(c.len as usize).min(readout.len());
            for i in start..end {
                readout.set(i, c.value);
                forced += 1;
            }
        }
        forced
    }

    /// The clock skew (seconds) applied to `layer`'s timestamps. Multiple
    /// entries for one layer sum; an empty plan returns `0.0`.
    pub fn layer_skew_s(&self, layer: u8) -> f64 {
        self.clock_skew
            .iter()
            .filter(|s| s.layer == layer)
            .map(|s| s.skew_s)
            .sum()
    }
}

fn hash_board(h: &mut Fnv, board: Option<u8>) {
    match board {
        None => h.u64(0),
        Some(id) => {
            h.u64(1);
            h.u64(u64::from(id));
        }
    }
}

/// The two probabilistic fault channels a transfer attempt rolls for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultChannel {
    /// The slave fails to acknowledge.
    Nack,
    /// The payload is corrupted in flight (fails its CRC).
    Corruption,
}

pub(crate) fn splitmix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The stateless fault draw: a uniform value in `[0, 1)` that is a pure
/// function of its inputs. The burst machinery compares these draws against
/// the plan's rates, so fault decisions depend on nothing but `(seed,
/// board, window, read, channel, attempt)` — the anchor of the fault
/// layer's thread-count and resume independence (see the [module
/// docs](self)).
pub fn fault_roll(
    seed: u64,
    board: BoardId,
    window: u32,
    read: u32,
    channel: FaultChannel,
    attempt: u32,
) -> f64 {
    let mut z = seed ^ 0xA076_1D64_78BD_642F;
    z = splitmix(z.wrapping_add(u64::from(board.0)).wrapping_add(1));
    z = splitmix(z.wrapping_add(u64::from(window)).wrapping_add(1));
    z = splitmix(z.wrapping_add(u64::from(read)).wrapping_add(1));
    z = splitmix(z.wrapping_add(match channel {
        FaultChannel::Nack => 1,
        FaultChannel::Corruption => 2,
    }));
    z = splitmix(z.wrapping_add(u64::from(attempt)).wrapping_add(1));
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Simulated exponential backoff (milliseconds) charged for retry
/// `attempt` (0-based), per the bounded retry-with-backoff of the paper's
/// Algorithm 1 recovery semantics: 1 ms doubling per attempt, capped at
/// 100 ms. Accounting only — the measurement schedule itself stays fixed,
/// so retried runs remain byte-identical in their record streams.
pub fn retry_backoff_ms(attempt: u32) -> u64 {
    (1u64 << attempt.min(7)).min(100)
}

/// Non-checkpointed counters of what the fault layer actually did during a
/// run. A pure function of `(config, seed, plan)` over the windows executed
/// in this process, so it is recomputable and deliberately kept out of the
/// `pufchk/1` wire format; after a resume it covers the resumed portion
/// only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// `(board, window)` pairs lost entirely to brownouts.
    pub browned_out_windows: u64,
    /// Power-ups that never happened because of brownouts.
    pub missed_power_ups: u64,
    /// Transfer attempts failed by an injected NACK.
    pub injected_nacks: u64,
    /// Transfer attempts failed by injected payload corruption.
    pub injected_corruptions: u64,
    /// Stuck-cell forcings applied to read-outs (cells × reads).
    pub stuck_cells_forced: u64,
    /// Simulated retry backoff accumulated, milliseconds.
    pub retry_backoff_ms: u64,
}

/// Why a gap record was emitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GapCause {
    /// The board was browned out for the whole window.
    Brownout,
    /// Read-outs were dropped after exhausting the transport retry budget.
    RetriesExhausted,
}

impl fmt::Display for GapCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GapCause::Brownout => write!(f, "brownout"),
            GapCause::RetriesExhausted => write!(f, "retries exhausted"),
        }
    }
}

/// An explicit hole in the record stream: a `(board, window)` that produced
/// fewer read-outs than scheduled. The campaign emits these instead of
/// stalling or panicking, so downstream coverage accounting can flag sparse
/// months rather than silently averaging over them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapRecord {
    /// The affected board.
    pub device: BoardId,
    /// The evaluation window (0-based month index).
    pub window: u32,
    /// Calendar month `(year, month)` of the window.
    pub year_month: (i32, u8),
    /// Scheduled read-outs that were not delivered.
    pub missed_reads: u32,
    /// What opened the gap.
    pub cause: GapCause,
}

impl fmt::Display for GapRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gap: board {} window {} ({}-{:02}) missed {} reads ({})",
            self.device.0,
            self.window,
            self.year_month.0,
            self.year_month.1,
            self.missed_reads,
            self.cause
        )
    }
}

fn array_of<'a>(value: &'a JsonValue, section: &str) -> Result<&'a [JsonValue], FaultPlanError> {
    value
        .as_array()
        .ok_or_else(|| FaultPlanError::Invalid(format!("`{section}` must be an array")))
}

fn known_keys(item: &JsonValue, allowed: &[&str], what: &str) -> Result<(), FaultPlanError> {
    let Some(entries) = item.as_object() else {
        return Err(FaultPlanError::Invalid(format!("{what} must be an object")));
    };
    for (key, _) in entries {
        if !allowed.contains(&key.as_str()) {
            return Err(FaultPlanError::Invalid(format!(
                "{what} has unknown field `{key}`"
            )));
        }
    }
    Ok(())
}

fn opt_board(item: &JsonValue, what: &str) -> Result<Option<u8>, FaultPlanError> {
    match item.get("board") {
        None | Some(JsonValue::Null) => Ok(None),
        Some(v) => {
            let id = v
                .as_u64()
                .and_then(|n| u8::try_from(n).ok())
                .ok_or_else(|| {
                    FaultPlanError::Invalid(format!("{what}: `board` must be a board id (0-255)"))
                })?;
            Ok(Some(id))
        }
    }
}

fn req_u32(item: &JsonValue, key: &str, what: &str) -> Result<u32, FaultPlanError> {
    item.get(key)
        .and_then(JsonValue::as_u64)
        .and_then(|n| u32::try_from(n).ok())
        .ok_or_else(|| {
            FaultPlanError::Invalid(format!("{what}: `{key}` must be a non-negative integer"))
        })
}

fn opt_rate(item: &JsonValue, key: &str, what: &str) -> Result<f64, FaultPlanError> {
    match item.get(key) {
        None => Ok(0.0),
        Some(v) => {
            let rate = v.as_number().ok_or_else(|| {
                FaultPlanError::Invalid(format!("{what}: `{key}` must be a number"))
            })?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(FaultPlanError::Invalid(format!(
                    "{what}: `{key}` must be a probability in [0, 1], got {rate}"
                )));
            }
            Ok(rate)
        }
    }
}

fn window_span(item: &JsonValue, what: &str) -> Result<(u32, u32), FaultPlanError> {
    let from = req_u32(item, "from_window", what)?;
    let until = req_u32(item, "until_window", what)?;
    if until < from {
        return Err(FaultPlanError::Invalid(format!(
            "{what}: until_window {until} precedes from_window {from}"
        )));
    }
    Ok((from, until))
}

fn parse_brownout(item: &JsonValue, i: usize) -> Result<Brownout, FaultPlanError> {
    let what = format!("brownouts[{i}]");
    known_keys(item, &["board", "from_window", "until_window"], &what)?;
    let (from_window, until_window) = window_span(item, &what)?;
    Ok(Brownout {
        board: opt_board(item, &what)?,
        from_window,
        until_window,
    })
}

fn parse_burst(item: &JsonValue, i: usize) -> Result<I2cBurst, FaultPlanError> {
    let what = format!("i2c_bursts[{i}]");
    known_keys(
        item,
        &[
            "board",
            "from_window",
            "until_window",
            "nack_rate",
            "corruption_rate",
        ],
        &what,
    )?;
    let (from_window, until_window) = window_span(item, &what)?;
    let nack_rate = opt_rate(item, "nack_rate", &what)?;
    let corruption_rate = opt_rate(item, "corruption_rate", &what)?;
    if nack_rate == 0.0 && corruption_rate == 0.0 {
        return Err(FaultPlanError::Invalid(format!(
            "{what}: a burst needs a nack_rate or corruption_rate above zero"
        )));
    }
    Ok(I2cBurst {
        board: opt_board(item, &what)?,
        from_window,
        until_window,
        nack_rate,
        corruption_rate,
    })
}

fn parse_cluster(item: &JsonValue, i: usize) -> Result<StuckCluster, FaultPlanError> {
    let what = format!("stuck_clusters[{i}]");
    known_keys(
        item,
        &["board", "cell", "len", "value", "from_window"],
        &what,
    )?;
    let board = opt_board(item, &what)?.ok_or_else(|| {
        FaultPlanError::Invalid(format!("{what}: `board` is required for a stuck cluster"))
    })?;
    let len = req_u32(item, "len", &what)?;
    if len == 0 {
        return Err(FaultPlanError::Invalid(format!(
            "{what}: `len` must be at least 1"
        )));
    }
    let value = match item.get("value") {
        Some(JsonValue::Bool(b)) => *b,
        _ => {
            return Err(FaultPlanError::Invalid(format!(
                "{what}: `value` must be true or false"
            )));
        }
    };
    Ok(StuckCluster {
        board,
        cell: req_u32(item, "cell", &what)?,
        len,
        value,
        from_window: req_u32(item, "from_window", &what)?,
    })
}

fn parse_skew(item: &JsonValue, i: usize) -> Result<LayerSkew, FaultPlanError> {
    let what = format!("clock_skew[{i}]");
    known_keys(item, &["layer", "skew_s"], &what)?;
    let layer = req_u32(item, "layer", &what)?;
    let layer = u8::try_from(layer)
        .map_err(|_| FaultPlanError::Invalid(format!("{what}: `layer` must fit a u8")))?;
    let skew_s = item
        .get("skew_s")
        .and_then(JsonValue::as_number)
        .ok_or_else(|| FaultPlanError::Invalid(format!("{what}: `skew_s` must be a number")))?;
    if !skew_s.is_finite() {
        return Err(FaultPlanError::Invalid(format!(
            "{what}: `skew_s` must be finite"
        )));
    }
    Ok(LayerSkew { layer, skew_s })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_specs_parse_to_the_zero_plan() {
        for spec in ["{}", r#"{"brownouts": []}"#] {
            let plan = FaultPlan::parse_json(spec).unwrap();
            assert!(plan.is_empty(), "{spec}");
        }
        assert!(FaultPlan::default().is_empty());
    }

    #[test]
    fn full_spec_round_trips_into_fields() {
        let plan = FaultPlan::parse_json(
            r#"{
                "brownouts": [{"from_window": 1, "until_window": 2},
                              {"board": 5, "from_window": 0, "until_window": 0}],
                "i2c_bursts": [{"board": 1, "from_window": 3, "until_window": 4,
                                "nack_rate": 0.25, "corruption_rate": 0.5}],
                "stuck_clusters": [{"board": 2, "cell": 100, "len": 32,
                                    "value": false, "from_window": 6}],
                "clock_skew": [{"layer": 0, "skew_s": -0.5}]
            }"#,
        )
        .unwrap();
        assert_eq!(plan.brownouts.len(), 2);
        assert_eq!(plan.brownouts[0].board, None);
        assert_eq!(plan.brownouts[1].board, Some(5));
        assert_eq!(plan.i2c_bursts[0].nack_rate, 0.25);
        assert_eq!(plan.stuck_clusters[0].len, 32);
        assert!(!plan.stuck_clusters[0].value);
        assert_eq!(plan.clock_skew[0].skew_s, -0.5);
    }

    #[test]
    fn invalid_specs_are_typed_errors() {
        let cases = [
            ("[1, 2]", "top level"),
            (r#"{"nope": []}"#, "unknown section"),
            (
                r#"{"brownouts": [{"from_window": 3, "until_window": 1}]}"#,
                "precedes",
            ),
            (
                r#"{"i2c_bursts": [{"from_window": 0, "until_window": 0, "nack_rate": 1.5}]}"#,
                "probability",
            ),
            (
                r#"{"i2c_bursts": [{"from_window": 0, "until_window": 0}]}"#,
                "above zero",
            ),
            (
                r#"{"stuck_clusters": [{"cell": 0, "len": 4, "value": true, "from_window": 0}]}"#,
                "required",
            ),
            (
                r#"{"stuck_clusters": [{"board": 0, "cell": 0, "len": 0, "value": true, "from_window": 0}]}"#,
                "at least 1",
            ),
            (
                r#"{"brownouts": [{"board": 0, "from_window": 0, "until_window": 0, "typo": 1}]}"#,
                "unknown field",
            ),
            (
                r#"{"clock_skew": [{"layer": 0, "skew_s": "fast"}]}"#,
                "number",
            ),
        ];
        for (spec, needle) in cases {
            let err = FaultPlan::parse_json(spec).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(needle), "spec {spec} gave: {msg}");
        }
        assert!(matches!(
            FaultPlan::parse_json("not json"),
            Err(FaultPlanError::Json(_))
        ));
        assert!(matches!(
            FaultPlan::load(Path::new("/nonexistent/plan.json")),
            Err(FaultPlanError::Io(_))
        ));
    }

    #[test]
    fn brownout_matching_honours_board_and_span() {
        let plan = FaultPlan {
            brownouts: vec![
                Brownout {
                    board: Some(3),
                    from_window: 2,
                    until_window: 4,
                },
                Brownout {
                    board: None,
                    from_window: 7,
                    until_window: 7,
                },
            ],
            ..FaultPlan::default()
        };
        assert!(plan.browned_out(BoardId(3), 2));
        assert!(plan.browned_out(BoardId(3), 4));
        assert!(!plan.browned_out(BoardId(3), 5));
        assert!(!plan.browned_out(BoardId(2), 3));
        // The rack-level brownout hits every board.
        assert!(plan.browned_out(BoardId(0), 7));
        assert!(plan.browned_out(BoardId(9), 7));
    }

    #[test]
    fn overlapping_bursts_take_the_maximum_rate() {
        let plan = FaultPlan {
            i2c_bursts: vec![
                I2cBurst {
                    board: None,
                    from_window: 0,
                    until_window: 5,
                    nack_rate: 0.1,
                    corruption_rate: 0.0,
                },
                I2cBurst {
                    board: Some(1),
                    from_window: 3,
                    until_window: 3,
                    nack_rate: 0.05,
                    corruption_rate: 0.4,
                },
            ],
            ..FaultPlan::default()
        };
        assert_eq!(plan.burst_rates(BoardId(0), 3), Some((0.1, 0.0)));
        assert_eq!(plan.burst_rates(BoardId(1), 3), Some((0.1, 0.4)));
        assert_eq!(plan.burst_rates(BoardId(1), 6), None);
    }

    #[test]
    fn stuck_clusters_force_and_clamp() {
        let plan = FaultPlan {
            stuck_clusters: vec![
                StuckCluster {
                    board: 0,
                    cell: 4,
                    len: 4,
                    value: true,
                    from_window: 2,
                },
                StuckCluster {
                    board: 0,
                    cell: 14,
                    len: 100,
                    value: false,
                    from_window: 0,
                },
            ],
            ..FaultPlan::default()
        };
        let mut readout = BitVec::zeros(16);
        // Before from_window, the first cluster is absent.
        assert_eq!(plan.apply_stuck(BoardId(0), 1, &mut readout), 2);
        let mut readout = BitVec::ones(16);
        // At window 2 both apply; the second is clamped to the width.
        let forced = plan.apply_stuck(BoardId(0), 2, &mut readout);
        assert_eq!(forced, 4 + 2);
        assert_eq!(readout.get(4), Some(true));
        assert_eq!(readout.get(14), Some(false));
        assert_eq!(readout.get(15), Some(false));
        // Other boards untouched.
        let mut other = BitVec::ones(16);
        assert_eq!(plan.apply_stuck(BoardId(1), 2, &mut other), 0);
        assert_eq!(other.count_ones(), 16);
    }

    #[test]
    fn layer_skews_sum_per_layer() {
        let plan = FaultPlan {
            clock_skew: vec![
                LayerSkew {
                    layer: 1,
                    skew_s: 0.25,
                },
                LayerSkew {
                    layer: 1,
                    skew_s: 0.5,
                },
            ],
            ..FaultPlan::default()
        };
        assert_eq!(plan.layer_skew_s(0), 0.0);
        assert_eq!(plan.layer_skew_s(1), 0.75);
        assert_eq!(FaultPlan::default().layer_skew_s(0), 0.0);
    }

    #[test]
    fn fault_rolls_are_uniform_and_input_sensitive() {
        let base = fault_roll(7, BoardId(0), 0, 0, FaultChannel::Nack, 0);
        assert!((0.0..1.0).contains(&base));
        // Every input perturbs the draw.
        let others = [
            fault_roll(8, BoardId(0), 0, 0, FaultChannel::Nack, 0),
            fault_roll(7, BoardId(1), 0, 0, FaultChannel::Nack, 0),
            fault_roll(7, BoardId(0), 1, 0, FaultChannel::Nack, 0),
            fault_roll(7, BoardId(0), 0, 1, FaultChannel::Nack, 0),
            fault_roll(7, BoardId(0), 0, 0, FaultChannel::Corruption, 0),
            fault_roll(7, BoardId(0), 0, 0, FaultChannel::Nack, 1),
        ];
        for (i, &o) in others.iter().enumerate() {
            assert_ne!(o, base, "input {i} did not perturb the roll");
        }
        // Statelessness: the same inputs always reproduce the same draw.
        assert_eq!(base, fault_roll(7, BoardId(0), 0, 0, FaultChannel::Nack, 0));
        // Rough uniformity over many draws.
        let mean: f64 = (0..10_000)
            .map(|i| fault_roll(7, BoardId(0), i / 100, i % 100, FaultChannel::Nack, 0))
            .sum::<f64>()
            / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        assert_eq!(retry_backoff_ms(0), 1);
        assert_eq!(retry_backoff_ms(1), 2);
        assert_eq!(retry_backoff_ms(6), 64);
        assert_eq!(retry_backoff_ms(7), 100);
        assert_eq!(retry_backoff_ms(40), 100);
    }

    #[test]
    fn stable_hash_sees_every_field() {
        let base = FaultPlan {
            brownouts: vec![Brownout {
                board: Some(1),
                from_window: 0,
                until_window: 1,
            }],
            i2c_bursts: vec![I2cBurst {
                board: None,
                from_window: 2,
                until_window: 3,
                nack_rate: 0.1,
                corruption_rate: 0.2,
            }],
            stuck_clusters: vec![StuckCluster {
                board: 0,
                cell: 8,
                len: 4,
                value: true,
                from_window: 5,
            }],
            clock_skew: vec![LayerSkew {
                layer: 1,
                skew_s: 0.25,
            }],
        };
        let h0 = base.stable_hash();
        let mut variations = Vec::new();
        let mut v = base.clone();
        v.brownouts[0].board = None;
        variations.push(v);
        let mut v = base.clone();
        v.brownouts[0].until_window = 2;
        variations.push(v);
        let mut v = base.clone();
        v.i2c_bursts[0].nack_rate = 0.11;
        variations.push(v);
        let mut v = base.clone();
        v.i2c_bursts[0].corruption_rate = 0.21;
        variations.push(v);
        let mut v = base.clone();
        v.stuck_clusters[0].value = false;
        variations.push(v);
        let mut v = base.clone();
        v.stuck_clusters[0].cell = 9;
        variations.push(v);
        let mut v = base.clone();
        v.clock_skew[0].skew_s = 0.26;
        variations.push(v);
        let mut v = base.clone();
        v.clock_skew.clear();
        variations.push(v);
        for (i, v) in variations.iter().enumerate() {
            assert_ne!(v.stable_hash(), h0, "variation {i} did not change the hash");
        }
        // The hash is stable across calls and plans compare structurally.
        assert_eq!(base.stable_hash(), h0);
        assert_eq!(
            FaultPlan::default().stable_hash(),
            FaultPlan::parse_json("{}").unwrap().stable_hash()
        );
    }
}
