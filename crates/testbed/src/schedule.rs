//! The two-layer test flow of the paper's Algorithm 1.
//!
//! The rig stacks its 18 boards in two layers. Each layer's master runs the
//! same loop — wait for the peer's *end* signal, power the slaves, signal the
//! peer to start, read every slave over I2C, ship the data, power off, and
//! hand back — so the two layers interleave half a period apart, never
//! switch at the same instant, and always produce the same number of
//! measurements per board ("data from different layers are synchronized").
//!
//! [`HandshakeMachine`] implements the signal-level protocol for property
//! testing; [`two_layer_schedule`] is the compiled-down timetable the
//! campaign runner consumes.

use crate::waveform::PowerWaveform;

/// Protocol phases of one layer's master in Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerPhase {
    /// Step 1: waiting for the peer layer's end signal.
    WaitingForPeerEnd,
    /// Steps 2–3: slaves powered, peer signalled to start.
    PoweredOn,
    /// Steps 4–5: reading slaves and forwarding to the data sink.
    ReadingOut,
    /// Step 6: slaves powered off.
    PoweredOff,
    /// Steps 7–8: waiting for the peer's start, then signalling end.
    HandingOver,
}

/// Signals exchanged between the two layer masters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// "I have started my read-out" (step 3 / step 7).
    Start,
    /// "I have finished my cycle" (step 8 / step 1).
    End,
}

/// The interlocked two-master state machine of Algorithm 1.
///
/// Drive it with [`step`](Self::step); each call advances exactly one layer
/// by one phase and returns the signal it emitted, if any. The machine
/// panics (protocol violation) if an implementation bug would ever let both
/// layers power on simultaneously — the condition the rig's separate supply
/// channels exist to prevent.
///
/// # Examples
///
/// ```
/// use puftestbed::schedule::HandshakeMachine;
///
/// let mut hs = HandshakeMachine::new();
/// for _ in 0..100 {
///     hs.step();
/// }
/// // Both layers make (lockstep) progress.
/// assert!(hs.cycles(0) > 0);
/// assert!(hs.cycles(0).abs_diff(hs.cycles(1)) <= 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandshakeMachine {
    phase: [LayerPhase; 2],
    cycles: [u64; 2],
    /// Pending signal for each layer (set by the peer).
    inbox: [Option<Signal>; 2],
    /// Which layer steps next.
    turn: u8,
}

impl Default for HandshakeMachine {
    fn default() -> Self {
        Self::new()
    }
}

impl HandshakeMachine {
    /// Creates the machine in its power-on state: layer 1 is treated as
    /// having just finished (the paper starts layer 0 first).
    pub fn new() -> Self {
        Self {
            phase: [LayerPhase::WaitingForPeerEnd, LayerPhase::HandingOver],
            cycles: [0, 0],
            inbox: [Some(Signal::End), None],
            turn: 0,
        }
    }

    /// Current phase of `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer > 1`.
    pub fn phase(&self, layer: u8) -> LayerPhase {
        self.phase[usize::from(layer)]
    }

    /// Completed read-out cycles of `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer > 1`.
    pub fn cycles(&self, layer: u8) -> u64 {
        self.cycles[usize::from(layer)]
    }

    /// Advances the next layer by one phase. Returns `(layer, new_phase)`.
    pub fn step(&mut self) -> (u8, LayerPhase) {
        let me = usize::from(self.turn);
        let peer = 1 - me;
        let next = match self.phase[me] {
            LayerPhase::WaitingForPeerEnd => {
                if self.inbox[me] == Some(Signal::End) {
                    self.inbox[me] = None;
                    // Step 2–3: power on, then tell the peer to start.
                    assert!(
                        !matches!(
                            self.phase[peer],
                            LayerPhase::PoweredOn | LayerPhase::ReadingOut
                        ),
                        "protocol violation: both layers powered simultaneously"
                    );
                    self.inbox[peer] = Some(Signal::Start);
                    LayerPhase::PoweredOn
                } else {
                    LayerPhase::WaitingForPeerEnd
                }
            }
            LayerPhase::PoweredOn => LayerPhase::ReadingOut,
            LayerPhase::ReadingOut => {
                self.cycles[me] += 1;
                LayerPhase::PoweredOff
            }
            LayerPhase::PoweredOff => LayerPhase::HandingOver,
            LayerPhase::HandingOver => {
                // Step 7–8: once the peer has started, signal our end.
                if self.inbox[me] == Some(Signal::Start) {
                    self.inbox[me] = None;
                    self.inbox[peer] = Some(Signal::End);
                    LayerPhase::WaitingForPeerEnd
                } else {
                    LayerPhase::HandingOver
                }
            }
        };
        self.phase[me] = next;
        let stepped = self.turn;
        self.turn = 1 - self.turn;
        (stepped, next)
    }
}

/// One scheduled read-out in the compiled timetable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledReadout {
    /// Cycle index (per layer).
    pub cycle: u64,
    /// Rig layer (0 or 1).
    pub layer: u8,
    /// Seconds since the campaign start at which the read-out is captured.
    pub time_s: f64,
}

/// Delay from a layer's rising edge to its read-out capture, seconds.
/// (Power settle plus the SRAM read, well inside the 3.8 s on-window.)
pub const READOUT_DELAY_S: f64 = 0.5;

/// Compiles the Algorithm-1 timetable for `cycles` cycles of both layers:
/// each layer reads once per 5.4 s period, half a period apart, at
/// [`READOUT_DELAY_S`] after its rising edge.
///
/// # Examples
///
/// ```
/// let schedule = puftestbed::schedule::two_layer_schedule(3);
/// assert_eq!(schedule.len(), 6);
/// // Interleaved: strictly increasing capture times alternating layers.
/// assert!(schedule.windows(2).all(|w| w[0].time_s < w[1].time_s));
/// ```
pub fn two_layer_schedule(cycles: u64) -> Vec<ScheduledReadout> {
    let waveforms = [PowerWaveform::paper_layer(0), PowerWaveform::paper_layer(1)];
    let mut out = Vec::with_capacity(usize::try_from(cycles).expect("cycles fits usize") * 2);
    for cycle in 0..cycles {
        for layer in 0..2u8 {
            let edge = waveforms[usize::from(layer)].cycle_start(cycle as i64);
            out.push(ScheduledReadout {
                cycle,
                layer,
                time_s: edge + READOUT_DELAY_S,
            });
        }
    }
    out.sort_by(|a, b| a.time_s.total_cmp(&b.time_s));
    out
}

/// Measurement cadence of the paper's rig: read-outs per minute per board.
///
/// # Examples
///
/// ```
/// // "around 10 measurements per minute"
/// let per_min = puftestbed::schedule::readouts_per_minute();
/// assert!(per_min > 10.0 && per_min < 12.0);
/// ```
pub fn readouts_per_minute() -> f64 {
    60.0 / PowerWaveform::paper_layer(0).period_s()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_alternates_layers_fairly() {
        let mut hs = HandshakeMachine::new();
        for _ in 0..10_000 {
            hs.step();
        }
        let (c0, c1) = (hs.cycles(0), hs.cycles(1));
        assert!(c0 > 0);
        assert!(
            c0.abs_diff(c1) <= 1,
            "layers must stay in lockstep: {c0} vs {c1}"
        );
    }

    #[test]
    fn machine_never_powers_both_layers() {
        let mut hs = HandshakeMachine::new();
        for _ in 0..10_000 {
            hs.step();
            let both_on = matches!(hs.phase(0), LayerPhase::PoweredOn | LayerPhase::ReadingOut)
                && matches!(hs.phase(1), LayerPhase::PoweredOn | LayerPhase::ReadingOut);
            assert!(!both_on);
        }
    }

    #[test]
    fn layer0_starts_first() {
        let mut hs = HandshakeMachine::new();
        // Find the first layer to reach ReadingOut.
        loop {
            let (layer, phase) = hs.step();
            if phase == LayerPhase::ReadingOut {
                assert_eq!(layer, 0);
                break;
            }
        }
    }

    #[test]
    fn schedule_has_one_readout_per_layer_per_period() {
        let schedule = two_layer_schedule(100);
        assert_eq!(schedule.len(), 200);
        let layer0: Vec<_> = schedule.iter().filter(|r| r.layer == 0).collect();
        assert_eq!(layer0.len(), 100);
        // Consecutive layer-0 readouts are one period apart.
        for w in layer0.windows(2) {
            assert!((w[1].time_s - w[0].time_s - 5.4).abs() < 1e-9);
        }
    }

    #[test]
    fn schedule_interleaves_layers() {
        let schedule = two_layer_schedule(10);
        for w in schedule.windows(2) {
            assert_ne!(w[0].layer, w[1].layer, "layers must alternate");
            assert!((w[1].time_s - w[0].time_s - 2.7).abs() < 1e-9);
        }
    }

    #[test]
    fn cadence_matches_paper_claim() {
        // ~11 M measurements over 730 days ≈ 10.5 per minute.
        let per_min = readouts_per_minute();
        let total = per_min * 60.0 * 24.0 * 730.0;
        assert!((10.0e6..12.5e6).contains(&total), "total {total}");
    }
}
