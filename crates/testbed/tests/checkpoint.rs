//! The headline guarantee of the checkpoint layer: a campaign interrupted
//! at *any* window boundary and resumed from its checkpoint produces a
//! record stream byte-identical to the uninterrupted run — for any thread
//! count on either side of the interruption — and a resume against the
//! wrong configuration, seed, or a damaged checkpoint is refused with a
//! typed error, never silently.

use proptest::prelude::*;
use puftestbed::store::checkpoint::{self, BoardState, CampaignState, CheckpointError};
use puftestbed::store::MemorySink;
use puftestbed::{
    BoardId, Campaign, CampaignConfig, CampaignSummary, MeasurementPlan, Record, SlaveBoardState,
};

const SEED: u64 = 2020;

/// Small but fully exercised: faults on (so the bus draws from the RNG
/// streams), retries on, several windows.
fn config() -> CampaignConfig {
    CampaignConfig {
        boards: 5,
        sram_bits: 256,
        read_bits: 192,
        months: 4,
        reads_per_window: 8,
        i2c_nack_rate: 0.1,
        i2c_corruption_rate: 0.05,
        i2c_retries: 3,
        ..CampaignConfig::default()
    }
}

fn json_bytes(records: &[Record]) -> Vec<u8> {
    let mut bytes = Vec::new();
    for r in records {
        bytes.extend_from_slice(r.to_json_line().as_bytes());
        bytes.push(b'\n');
    }
    bytes
}

fn full_run(cfg: &CampaignConfig, seed: u64, threads: usize) -> (Vec<Record>, CampaignSummary) {
    let mut campaign = Campaign::new(cfg.clone(), seed).threads(threads);
    let mut sink = MemorySink::new();
    let summary = campaign.run(&mut sink).expect("memory sink cannot fail");
    (sink.into_records(), summary)
}

/// Runs `halt` windows, checkpoints through a full encode/decode cycle,
/// resumes, and finishes; returns head + tail records and the final
/// summary.
fn interrupted_run(
    cfg: &CampaignConfig,
    seed: u64,
    halt: u32,
    threads_before: usize,
    threads_after: usize,
) -> (Vec<Record>, CampaignSummary) {
    let mut first = Campaign::new(cfg.clone(), seed)
        .threads(threads_before)
        .halt_after_windows(halt);
    let mut head = MemorySink::new();
    first.run(&mut head).expect("memory sink cannot fail");
    assert!(!first.completed(), "halt must leave work remaining");
    // Round-trip the state through the wire format, as a real resume does.
    let state = checkpoint::decode(&checkpoint::encode(&first.export_state()))
        .expect("fresh checkpoint decodes");
    let mut second = Campaign::resume(cfg.clone(), seed, &state)
        .expect("matching config resumes")
        .threads(threads_after);
    let mut tail = MemorySink::new();
    let summary = second.run(&mut tail).expect("memory sink cannot fail");
    assert!(second.completed());
    let mut records = head.into_records();
    records.extend(tail.into_records());
    (records, summary)
}

#[test]
fn resume_at_every_boundary_is_byte_identical_for_any_threads() {
    let cfg = config();
    let (reference, ref_summary) = full_run(&cfg, SEED, 1);
    let reference_bytes = json_bytes(&reference);
    for halt in 1..=cfg.months {
        for &(before, after) in &[(1, 3), (3, 8), (8, 1)] {
            let (records, summary) = interrupted_run(&cfg, SEED, halt, before, after);
            assert_eq!(
                json_bytes(&records),
                reference_bytes,
                "halt after {halt} windows, threads {before}→{after}"
            );
            assert_eq!(summary, ref_summary);
        }
    }
}

#[test]
fn resumed_campaign_reexports_the_same_state() {
    let cfg = config();
    let mut first = Campaign::new(cfg.clone(), SEED).halt_after_windows(2);
    let mut sink = MemorySink::new();
    first.run(&mut sink).unwrap();
    let state = first.export_state();
    let resumed = Campaign::resume(cfg, SEED, &state).unwrap();
    assert_eq!(resumed.export_state(), state);
    assert_eq!(resumed.summary_so_far(), state.summary);
}

#[test]
fn continuous_plan_checkpoint_round_trips_too() {
    let cfg = CampaignConfig {
        plan: MeasurementPlan::Continuous,
        months: 0,
        reads_per_window: 12,
        i2c_nack_rate: 0.0,
        i2c_corruption_rate: 0.0,
        ..config()
    };
    let mut campaign = Campaign::new(cfg.clone(), SEED);
    let mut sink = MemorySink::new();
    campaign.run(&mut sink).unwrap();
    assert!(campaign.completed());
    let state = checkpoint::decode(&checkpoint::encode(&campaign.export_state())).unwrap();
    // Resuming a completed continuous campaign runs nothing further.
    let mut resumed = Campaign::resume(cfg, SEED, &state).unwrap();
    let mut tail = MemorySink::new();
    let summary = resumed.run(&mut tail).unwrap();
    assert_eq!(tail.into_records().len(), 0);
    assert_eq!(summary, state.summary);
}

#[test]
fn wrong_seed_is_refused_with_a_config_mismatch() {
    let cfg = config();
    let mut campaign = Campaign::new(cfg.clone(), SEED).halt_after_windows(1);
    campaign.run(&mut MemorySink::new()).unwrap();
    let state = campaign.export_state();
    let err = Campaign::resume(cfg, SEED + 1, &state).unwrap_err();
    assert!(
        matches!(err, CheckpointError::ConfigMismatch { .. }),
        "got {err}"
    );
}

#[test]
fn changed_config_is_refused_with_a_config_mismatch() {
    let cfg = config();
    let mut campaign = Campaign::new(cfg.clone(), SEED).halt_after_windows(1);
    campaign.run(&mut MemorySink::new()).unwrap();
    let state = campaign.export_state();
    let changed = CampaignConfig {
        i2c_nack_rate: cfg.i2c_nack_rate + 0.01,
        ..cfg
    };
    let err = Campaign::resume(changed, SEED, &state).unwrap_err();
    assert!(
        matches!(err, CheckpointError::ConfigMismatch { .. }),
        "got {err}"
    );
}

#[test]
fn internally_inconsistent_state_is_refused() {
    let cfg = config();
    let mut campaign = Campaign::new(cfg.clone(), SEED).halt_after_windows(1);
    campaign.run(&mut MemorySink::new()).unwrap();
    let good = campaign.export_state();

    // A state passing the hash but carrying the wrong board count.
    let mut short = good.clone();
    short.boards.pop();
    assert!(matches!(
        Campaign::resume(cfg.clone(), SEED, &short),
        Err(CheckpointError::StateMismatch(_))
    ));

    // A window index beyond the campaign's end.
    let mut overrun = good.clone();
    overrun.next_window = cfg.months + 2;
    assert!(matches!(
        Campaign::resume(cfg.clone(), SEED, &overrun),
        Err(CheckpointError::StateMismatch(_))
    ));

    // Swapped board ids.
    let mut swapped = good;
    swapped.boards.swap(0, 1);
    assert!(matches!(
        Campaign::resume(cfg, SEED, &swapped),
        Err(CheckpointError::StateMismatch(_))
    ));
}

#[test]
fn damaged_checkpoint_file_never_resumes_silently() {
    let cfg = config();
    let mut campaign = Campaign::new(cfg, SEED).halt_after_windows(1);
    campaign.run(&mut MemorySink::new()).unwrap();
    let state = campaign.export_state();
    let dir = std::env::temp_dir();
    let path = dir.join(format!("pufchk_damaged_{}.pufchk", std::process::id()));
    checkpoint::write_file(&path, &state).unwrap();
    let bytes = std::fs::read(&path).unwrap();

    // Corrupt one byte in the middle of the body.
    let mut corrupt = bytes.clone();
    corrupt[bytes.len() / 2] ^= 0x20;
    std::fs::write(&path, &corrupt).unwrap();
    assert!(
        matches!(
            checkpoint::read_file(&path),
            Err(CheckpointError::Corrupt(_))
        ),
        "corruption must be detected"
    );

    // Truncate, as a crash mid-write on a non-atomic filesystem would.
    std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
    assert!(matches!(
        checkpoint::read_file(&path),
        Err(CheckpointError::Corrupt(_))
    ));

    std::fs::remove_file(&path).unwrap();
}

#[test]
fn checkpoint_files_appear_at_the_configured_cadence() {
    let cfg = config();
    let dir = std::env::temp_dir();
    let path = dir.join(format!("pufchk_cadence_{}.pufchk", std::process::id()));
    let ins = pufobs::Instruments::new();
    let mut campaign = Campaign::new(cfg.clone(), SEED)
        .instruments(&ins)
        .checkpoints(2, &path);
    let mut sink = MemorySink::new();
    campaign.run(&mut sink).unwrap();
    // 5 windows at a cadence of 2 → checkpoints after windows 2, 4, and at
    // completion.
    let snap = ins.snapshot();
    assert_eq!(snap.counter("checkpoint.writes"), 3);
    assert!(snap.counter("checkpoint.bytes_written") > 0);
    let final_state = checkpoint::read_file(&path).unwrap();
    assert_eq!(final_state.next_window, cfg.months + 1);
    assert_eq!(final_state, campaign.export_state());
    std::fs::remove_file(&path).unwrap();
}

fn arb_state() -> impl Strategy<Value = CampaignState> {
    let cell = -8.0f64..8.0;
    let board = (
        0u64..1 << 40,
        (any::<u64>(), any::<u64>()),
        (0u64..1 << 40, 0u64..1 << 20, 0u64..1 << 50),
        0.0f64..30.0,
        proptest::collection::vec((cell.clone(), cell), 1..24),
    );
    (
        any::<u64>(),
        any::<u64>(),
        -(1i64 << 40)..1 << 40,
        0u32..1000,
        (0u32..1000, 0u64..1 << 40, 0u64..1 << 20, 0u64..1 << 20),
        proptest::collection::vec(board, 1..6),
    )
        .prop_map(
            |(config_hash, seed, sim_clock, next_window, s, boards)| CampaignState {
                config_hash,
                seed,
                sim_clock,
                next_window,
                summary: CampaignSummary {
                    windows: s.0,
                    records: s.1,
                    dropped: s.2,
                    retries: s.3,
                },
                boards: boards
                    .into_iter()
                    .enumerate()
                    .map(|(i, (cycles, rng, bus, age, cells))| BoardState {
                        board: SlaveBoardState {
                            id: BoardId(u8::try_from(i).expect("few boards")),
                            cycles_completed: cycles,
                            array: sramcell::ArrayState {
                                mismatch: cells.iter().map(|c| c.0).collect(),
                                drift_bias: cells.iter().map(|c| c.1).collect(),
                            },
                            aging: sramaging::AgingState {
                                stress_age_years: age,
                            },
                        },
                        rng,
                        bus: puftestbed::i2c::BusStats {
                            transactions: bus.0,
                            failures: bus.1,
                            bytes_moved: bus.2,
                        },
                    })
                    .collect(),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn any_campaign_state_round_trips_the_wire_format_exactly(state in arb_state()) {
        let bytes = checkpoint::encode(&state);
        let back = checkpoint::decode(&bytes).expect("own encoding decodes");
        prop_assert_eq!(back, state);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_boundary_and_threads_still_match_the_full_run(
        halt in 1u32..4,
        before in 1usize..5,
        after in 1usize..5,
        seed in 0u64..1 << 32,
    ) {
        let cfg = config();
        let (reference, ref_summary) = full_run(&cfg, seed, 2);
        let (records, summary) = interrupted_run(&cfg, seed, halt, before, after);
        prop_assert_eq!(json_bytes(&records), json_bytes(&reference));
        prop_assert_eq!(summary, ref_summary);
    }
}
