//! Satellite: the sharded campaign engine is deterministic — same
//! `CampaignConfig` + seed twice, and any thread count, produce
//! byte-identical `Dataset` records.

use puftestbed::store::Record;
use puftestbed::{Campaign, CampaignConfig, MeasurementPlan};

fn config_with_faults() -> CampaignConfig {
    // Faults exercise the per-board I2C fault draws; retries exercise the
    // retry/drop accounting under every thread topology.
    CampaignConfig {
        boards: 6,
        sram_bits: 512,
        read_bits: 300,
        months: 2,
        reads_per_window: 15,
        i2c_nack_rate: 0.1,
        i2c_corruption_rate: 0.05,
        i2c_retries: 4,
        ..CampaignConfig::default()
    }
}

fn run(config: CampaignConfig, seed: u64, threads: usize) -> (Vec<Record>, String) {
    let dataset = Campaign::new(config, seed).threads(threads).run_in_memory();
    let bytes: String = dataset
        .records()
        .iter()
        .map(|r| r.to_json_line() + "\n")
        .collect();
    (dataset.records().to_vec(), bytes)
}

#[test]
fn same_seed_twice_is_byte_identical() {
    let (records_a, bytes_a) = run(config_with_faults(), 99, 1);
    let (records_b, bytes_b) = run(config_with_faults(), 99, 1);
    assert!(!records_a.is_empty());
    assert_eq!(records_a, records_b);
    assert_eq!(bytes_a, bytes_b);
}

#[test]
fn thread_count_does_not_change_the_record_stream() {
    let (records_1, bytes_1) = run(config_with_faults(), 7, 1);
    for threads in [2, 3, 8] {
        let (records_n, bytes_n) = run(config_with_faults(), 7, threads);
        assert_eq!(records_1, records_n, "threads={threads}");
        assert_eq!(bytes_1, bytes_n, "threads={threads}");
    }
}

#[test]
fn summaries_agree_across_thread_counts() {
    let summary_1 = Campaign::new(config_with_faults(), 41)
        .threads(1)
        .run_in_memory()
        .summary();
    let summary_8 = Campaign::new(config_with_faults(), 41)
        .threads(8)
        .run_in_memory()
        .summary();
    assert_eq!(summary_1, summary_8);
    assert!(summary_1.retries > 0, "faults must actually fire");
}

#[test]
fn continuous_plan_is_thread_count_independent_too() {
    let config = CampaignConfig {
        plan: MeasurementPlan::Continuous,
        months: 0,
        i2c_nack_rate: 0.0,
        i2c_corruption_rate: 0.0,
        ..config_with_faults()
    };
    let (records_1, _) = run(config.clone(), 13, 1);
    let (records_4, _) = run(config, 13, 4);
    assert_eq!(records_1, records_4);
}

#[test]
fn different_seeds_produce_different_data() {
    let (records_a, _) = run(config_with_faults(), 1, 1);
    let (records_b, _) = run(config_with_faults(), 2, 1);
    assert_ne!(records_a, records_b);
}
