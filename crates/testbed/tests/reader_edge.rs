//! Edge cases of the parallel record reader: degenerate batch sizes,
//! files without a trailing newline, CRLF line endings, and mid-file I/O
//! failures — all must preserve in-order delivery and exact positions.

use pufbits::BitVec;
use puftestbed::store::{
    AnyRecordReader, BinaryRecordReader, BinarySink, JsonLinesSink, ParallelRecordReader,
    ParseRecordError, Record, RecordFormat, RecordSink,
};
use puftestbed::{BoardId, Timestamp};
use std::io::{BufRead, Cursor, Read};

fn records(n: u64) -> Vec<Record> {
    (0..n)
        .map(|seq| {
            Record::new(
                BoardId((seq % 3) as u8),
                seq,
                Timestamp(seq as i64),
                BitVec::from_bytes(&[seq as u8, 0x5A]),
            )
        })
        .collect()
}

fn jsonl(n: u64) -> Vec<u8> {
    let mut sink = JsonLinesSink::new(Vec::new());
    for r in records(n) {
        sink.record(&r).unwrap();
    }
    sink.into_inner().unwrap()
}

#[test]
fn batch_size_one_preserves_order() {
    let items: Vec<_> = ParallelRecordReader::spawn(Cursor::new(jsonl(40)), 4, 1)
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(items, records(40));
}

#[test]
fn zero_batch_size_is_clamped_not_fatal() {
    let items: Vec<_> = ParallelRecordReader::spawn(Cursor::new(jsonl(10)), 0, 0)
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(items, records(10));
}

#[test]
fn missing_trailing_newline_still_yields_the_last_record() {
    let mut bytes = jsonl(13);
    assert_eq!(bytes.pop(), Some(b'\n'));
    let items: Vec<_> = ParallelRecordReader::spawn(Cursor::new(bytes), 3, 4)
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(items, records(13));
}

#[test]
fn crlf_line_endings_parse_cleanly() {
    // A file produced on Windows: `\r` survives `BufRead::lines` (which
    // strips only `\n`) and must be absorbed as JSON whitespace.
    let crlf: Vec<u8> = jsonl(17)
        .into_iter()
        .flat_map(|b| {
            if b == b'\n' {
                vec![b'\r', b'\n']
            } else {
                vec![b]
            }
        })
        .collect();
    let items: Vec<_> = ParallelRecordReader::spawn(Cursor::new(crlf), 3, 4)
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(items, records(17));
}

/// A `BufRead` over a prefix of a record file that fails with
/// `UnexpectedEof` once the prefix is exhausted — a stream that dies
/// mid-file rather than at a record boundary.
struct TruncatedReader {
    data: Cursor<Vec<u8>>,
    failed: bool,
}

impl TruncatedReader {
    fn exhausted(&self) -> bool {
        self.data.position() as usize == self.data.get_ref().len()
    }

    fn fail(&mut self) -> std::io::Error {
        self.failed = true;
        std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "stream died mid-file")
    }
}

impl Read for TruncatedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.exhausted() && !self.failed {
            return Err(self.fail());
        }
        self.data.read(buf)
    }
}

impl BufRead for TruncatedReader {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        if self.exhausted() && !self.failed {
            return Err(self.fail());
        }
        self.data.fill_buf()
    }

    fn consume(&mut self, amt: usize) {
        self.data.consume(amt);
    }
}

#[test]
fn io_error_mid_file_is_delivered_at_the_exact_position_in_order() {
    let bytes = jsonl(20);
    // Truncate a few bytes into line 8 (after the 7th newline), so exactly
    // 7 records are readable and the 8th line is cut mid-record.
    let cut = bytes
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .nth(6)
        .map(|(i, _)| i + 4)
        .unwrap();
    let reader = TruncatedReader {
        data: Cursor::new(bytes[..cut].to_vec()),
        failed: false,
    };

    let items: Vec<_> = ParallelRecordReader::spawn(reader, 3, 4).collect();

    // The 7 complete records arrive first, in input order; the failure is
    // the very next item — the partial 8th line is reported as I/O loss,
    // never as a malformed record — and the stream ends there.
    assert_eq!(items.len(), 8);
    let good: Vec<_> = items[..7]
        .iter()
        .map(|r| r.clone().expect("complete records parse"))
        .collect();
    assert_eq!(good, records(20)[..7].to_vec());
    match items[7].as_ref().unwrap_err() {
        ParseRecordError::Io { kind, .. } => {
            assert_eq!(*kind, std::io::ErrorKind::UnexpectedEof);
        }
        other => panic!("expected an Io error, got {other:?}"),
    }
}

fn pufrec(n: u64) -> Vec<u8> {
    let mut sink = BinarySink::new(Vec::new()).unwrap();
    for r in records(n) {
        sink.record(&r).unwrap();
    }
    sink.into_inner().unwrap()
}

#[test]
fn binary_reader_agrees_with_json_reader() {
    let json: Vec<_> = ParallelRecordReader::spawn(Cursor::new(jsonl(50)), 3, 4)
        .collect::<Result<_, _>>()
        .unwrap();
    let binary: Vec<_> = BinaryRecordReader::spawn(Cursor::new(pufrec(50)), 3, 4)
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(json, binary);
    assert_eq!(json, records(50));
}

#[test]
fn binary_zero_batch_and_thread_counts_are_clamped_not_fatal() {
    let items: Vec<_> = BinaryRecordReader::spawn(Cursor::new(pufrec(10)), 0, 0)
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(items, records(10));
}

#[test]
fn binary_io_error_mid_file_is_delivered_at_the_exact_position_in_order() {
    let bytes = pufrec(20);
    // Cut mid-way through the 8th record's frame, with the stream dying
    // (not cleanly ending) at the cut.
    let record_len = (bytes.len() - puftestbed::store::binary::HEADER_LEN) / 20;
    let cut = puftestbed::store::binary::HEADER_LEN + 7 * record_len + record_len / 2;
    let reader = TruncatedReader {
        data: Cursor::new(bytes[..cut].to_vec()),
        failed: false,
    };

    let items: Vec<_> = BinaryRecordReader::spawn(reader, 3, 4).collect();

    assert_eq!(items.len(), 8);
    let good: Vec<_> = items[..7]
        .iter()
        .map(|r| r.clone().expect("complete records decode"))
        .collect();
    assert_eq!(good, records(20)[..7].to_vec());
    match items[7].as_ref().unwrap_err() {
        ParseRecordError::Io { kind, .. } => {
            assert_eq!(*kind, std::io::ErrorKind::UnexpectedEof);
        }
        other => panic!("expected an Io error, got {other:?}"),
    }
}

#[test]
fn zero_length_binary_file_is_typed_corrupt_with_position() {
    let items: Vec<_> = BinaryRecordReader::spawn(Cursor::new(Vec::new()), 2, 4).collect();
    assert_eq!(items.len(), 1);
    let err = items[0].as_ref().unwrap_err();
    assert!(!err.is_io(), "clean EOF is structural damage, not I/O loss");
    match err {
        ParseRecordError::Corrupt(msg) => {
            assert!(
                msg.contains("file header truncated at 0 of 12 bytes"),
                "{msg}"
            )
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn header_only_binary_file_yields_no_records_and_no_errors() {
    let items: Vec<_> = BinaryRecordReader::spawn(Cursor::new(pufrec(0)), 2, 4).collect();
    assert!(
        items.is_empty(),
        "a header with no frames is a valid empty file"
    );
}

#[test]
fn truncation_inside_a_length_prefix_is_corrupt_with_the_exact_offset() {
    let bytes = pufrec(5);
    let record_len = (bytes.len() - puftestbed::store::binary::HEADER_LEN) / 5;
    // Keep 3 whole frames plus 2 bytes of the 4th frame's length prefix.
    let cut = puftestbed::store::binary::HEADER_LEN + 3 * record_len + 2;
    let items: Vec<_> =
        BinaryRecordReader::spawn(Cursor::new(bytes[..cut].to_vec()), 2, 4).collect();
    assert_eq!(items.len(), 4);
    assert_eq!(
        items[..3]
            .iter()
            .map(|r| r.clone().unwrap())
            .collect::<Vec<_>>(),
        records(5)[..3].to_vec()
    );
    let err = items[3].as_ref().unwrap_err();
    assert!(!err.is_io(), "a cleanly-ended torn file is Corrupt, not Io");
    match err {
        ParseRecordError::Corrupt(msg) => {
            let expected = format!(
                "record truncated inside the length prefix (2 of 4 bytes at offset {})",
                puftestbed::store::binary::HEADER_LEN + 3 * record_len
            );
            assert!(msg.contains(&expected), "{msg}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn resync_recovers_the_frames_after_a_corrupt_region() {
    let mut bytes = pufrec(20);
    let record_len = (bytes.len() - puftestbed::store::binary::HEADER_LEN) / 20;
    // Destroy the 5th frame's payload; its CRC no longer matches.
    bytes[puftestbed::store::binary::HEADER_LEN + 4 * record_len + 9] ^= 0xFF;

    let items: Vec<_> =
        BinaryRecordReader::spawn_resync(Cursor::new(bytes), 2, 4, 1 << 20, None).collect();
    let good: Vec<_> = items
        .iter()
        .filter_map(|r| r.as_ref().ok().cloned())
        .collect();
    let notices: Vec<_> = items
        .iter()
        .filter_map(|r| r.as_ref().err().map(|e| e.to_string()))
        .collect();
    // Every frame but the destroyed one survives, and the loss is loud:
    // one resync notice naming the dropped range.
    let mut expected = records(20);
    expected.remove(4);
    assert_eq!(good, expected);
    assert_eq!(notices.len(), 1);
    assert!(
        notices[0].contains("resynchronised") && notices[0].contains(&record_len.to_string()),
        "{}",
        notices[0]
    );
}

#[test]
fn resync_with_an_exhausted_skip_budget_gives_up_loudly() {
    let mut bytes = pufrec(10);
    let record_len = (bytes.len() - puftestbed::store::binary::HEADER_LEN) / 10;
    bytes[puftestbed::store::binary::HEADER_LEN + 2 * record_len + 9] ^= 0xFF;

    // A budget smaller than one frame cannot reach the next valid frame.
    let items: Vec<_> =
        BinaryRecordReader::spawn_resync(Cursor::new(bytes), 2, 4, 3, None).collect();
    let good = items.iter().filter(|r| r.is_ok()).count();
    assert_eq!(good, 2, "the frames before the damage still arrive");
    let last = items.last().unwrap().as_ref().unwrap_err().to_string();
    assert!(
        last.contains("resync abandoned") && last.contains("skip budget of 3 bytes"),
        "{last}"
    );
}

#[test]
fn resync_on_a_clean_file_is_equivalent_to_the_strict_reader() {
    let bytes = pufrec(30);
    let strict: Vec<_> = BinaryRecordReader::spawn(Cursor::new(bytes.clone()), 3, 4)
        .collect::<Result<_, _>>()
        .unwrap();
    let resync: Vec<_> = BinaryRecordReader::spawn_resync(Cursor::new(bytes), 3, 4, 1024, None)
        .collect::<Result<_, _>>()
        .unwrap();
    assert_eq!(strict, resync);
}

/// The `convert` flow: decode with the auto-detecting reader, re-encode in
/// the other format, and back. Migration must be lossless — the same
/// records after any number of hops, and the JSON → binary → JSON hop
/// reproduces the original file byte-for-byte.
#[test]
fn convert_round_trip_is_lossless_and_byte_identical() {
    let original_json = jsonl(64);

    let reader = AnyRecordReader::open(Cursor::new(original_json.clone()), 2, 8, None).unwrap();
    assert_eq!(reader.format(), RecordFormat::Json);
    let mut to_binary = BinarySink::new(Vec::new()).unwrap();
    for item in reader {
        to_binary.record(&item.unwrap()).unwrap();
    }
    let binary = to_binary.into_inner().unwrap();

    let reader = AnyRecordReader::open(Cursor::new(binary), 2, 8, None).unwrap();
    assert_eq!(reader.format(), RecordFormat::Binary);
    let mut back_to_json = JsonLinesSink::new(Vec::new());
    for item in reader {
        back_to_json.record(&item.unwrap()).unwrap();
    }
    let round_tripped = back_to_json.into_inner().unwrap();

    assert_eq!(round_tripped, original_json);
}
