//! Property-based invariants of the fsck/salvage subsystem.
//!
//! The central guarantees: truncating a `pufrec/1` file at *any* byte
//! offset, the salvage recovers exactly the frames that were fully
//! written before the cut and its journal accounts for every dropped
//! byte; corrupting any single byte is either detected (the report is not
//! clean) or harmless (every record survives unchanged); and the
//! streaming resync reader recovers the same record sequence as the
//! offline salvage.

use proptest::prelude::*;
use pufbits::BitVec;
use puftestbed::store::binary::HEADER_LEN;
use puftestbed::store::fsck::salvage_pufrec;
use puftestbed::store::{BinaryRecordReader, BinarySink, Record, RecordSink};
use puftestbed::{BoardId, Timestamp};
use std::io::Cursor;

/// Records with varied payload widths, so frame boundaries are irregular.
fn sample_records(n: u64) -> Vec<Record> {
    (0..n)
        .map(|seq| {
            let width = 1 + (seq as usize % 5);
            let data: Vec<u8> = (0..width)
                .map(|i| (seq as u8).wrapping_mul(31) ^ i as u8)
                .collect();
            Record::new(
                BoardId((seq % 4) as u8),
                seq,
                Timestamp(1_486_512_000 + seq as i64 * 60),
                BitVec::from_bytes(&data),
            )
        })
        .collect()
}

fn encode(records: &[Record]) -> Vec<u8> {
    let mut sink = BinarySink::new(Vec::new()).unwrap();
    for r in records {
        sink.record(r).unwrap();
    }
    sink.into_inner().unwrap()
}

/// The stream offset at which each frame *ends* (so a cut at or past the
/// offset keeps the frame).
fn frame_ends(bytes: &[u8]) -> Vec<usize> {
    let mut ends = Vec::new();
    let mut cursor = HEADER_LEN;
    while cursor < bytes.len() {
        let (_, used) = Record::decode_binary(&bytes[cursor..]).expect("clean file decodes");
        cursor += used;
        ends.push(cursor);
    }
    ends
}

/// Truncation at EVERY byte offset of a generated file — exhaustive, not
/// sampled: this is exactly what a torn write, a full disk, or a `kill
/// -9` mid-append leaves behind.
#[test]
fn truncation_at_every_offset_recovers_exactly_the_complete_frames() {
    let records = sample_records(8);
    let bytes = encode(&records);
    let ends = frame_ends(&bytes);
    for cut in 0..=bytes.len() {
        let prefix = &bytes[..cut];
        let mut kept: Vec<Record> = Vec::new();
        let report = salvage_pufrec(prefix, |r| kept.push(r.clone()));

        // Exactly the frames fully written before the cut survive.
        let complete = ends.iter().filter(|&&end| end <= cut).count();
        assert_eq!(
            kept,
            records[..complete].to_vec(),
            "cut at {cut}: expected the first {complete} frames"
        );
        assert_eq!(report.frames_ok, complete as u64, "cut at {cut}");

        // The journal accounts for every byte of the truncated file.
        assert_eq!(
            report.bytes_kept + report.bytes_dropped,
            cut as u64,
            "cut at {cut}: kept + dropped must cover the file"
        );
        assert_eq!(
            report.dropped.iter().map(|d| d.len).sum::<u64>(),
            report.bytes_dropped,
            "cut at {cut}: journal ranges must sum to bytes_dropped"
        );
        // Dropped ranges carry real positions inside the file.
        for range in &report.dropped {
            assert!(range.offset + range.len <= cut as u64, "cut at {cut}");
        }
        // A cut through the header loses header_ok; at or past it, never.
        assert_eq!(report.header_ok, cut >= HEADER_LEN, "cut at {cut}");
    }
}

proptest! {
    /// Any single corrupted byte is either detected (the report says so)
    /// or harmless (every record survives bit-for-bit) — never a silent
    /// change of the salvaged data.
    #[test]
    fn single_byte_corruption_is_detected_or_harmless(
        n in 1u64..10,
        pick in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let records = sample_records(n);
        let mut bytes = encode(&records);
        let pos = (pick % bytes.len() as u64) as usize;
        bytes[pos] ^= xor;

        let mut kept: Vec<Record> = Vec::new();
        let report = salvage_pufrec(&bytes, |r| kept.push(r.clone()));

        prop_assert_eq!(
            report.bytes_kept + report.bytes_dropped,
            bytes.len() as u64,
            "every byte accounted for"
        );
        if report.clean() {
            // Harmless (e.g. a flip inside the header's declared-bits
            // field): the data must be untouched.
            prop_assert_eq!(kept, records);
        }
        // Otherwise: detected, with the journal naming the damage. Either
        // way the corruption never silently alters a salvaged record.
        for record in &kept {
            prop_assert!(
                records.contains(record),
                "salvage must never invent records"
            );
        }
    }

    /// The streaming bounded resync recovers the same record sequence as
    /// the offline exhaustive salvage (its in-memory counterpart), so
    /// `assess --resync` and `convert --fsck --repair` agree on what a
    /// damaged file still holds.
    #[test]
    fn streaming_resync_agrees_with_offline_salvage(
        n in 2u64..12,
        pick in any::<u64>(),
        xor in 1u8..=255,
    ) {
        let records = sample_records(n);
        let mut bytes = encode(&records);
        let pos = (pick % bytes.len() as u64) as usize;
        bytes[pos] ^= xor;

        let mut offline: Vec<Record> = Vec::new();
        salvage_pufrec(&bytes, |r| offline.push(r.clone()));

        let streaming: Vec<Record> =
            BinaryRecordReader::spawn_resync(Cursor::new(bytes), 2, 3, u64::MAX, None)
                .filter_map(Result::ok)
                .collect();
        prop_assert_eq!(streaming, offline);
    }
}
