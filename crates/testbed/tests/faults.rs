//! Fault-injection layer contract tests: the tentpole's determinism
//! guarantees. A faulted campaign is byte-reproducible for any thread
//! count and across a checkpoint/resume boundary; a zero-fault plan is
//! byte-identical to a campaign without any plan; and each fault class
//! degrades the record stream exactly as scheduled — removing or altering
//! only what the plan names, never disturbing unaffected boards.

use pufobs::Instruments;
use puftestbed::faults::{Brownout, I2cBurst, LayerSkew, StuckCluster};
use puftestbed::store::{MemorySink, Record};
use puftestbed::{BoardId, Campaign, CampaignConfig, FaultPlan, GapCause};

fn base_config() -> CampaignConfig {
    CampaignConfig {
        boards: 4,
        sram_bits: 256,
        read_bits: 256,
        months: 2,
        reads_per_window: 10,
        ..CampaignConfig::default()
    }
}

fn spicy_plan() -> FaultPlan {
    FaultPlan {
        brownouts: vec![Brownout {
            board: Some(2),
            from_window: 1,
            until_window: 1,
        }],
        i2c_bursts: vec![I2cBurst {
            board: Some(1),
            from_window: 0,
            until_window: 2,
            nack_rate: 0.3,
            corruption_rate: 0.1,
        }],
        stuck_clusters: vec![StuckCluster {
            board: 0,
            cell: 8,
            len: 8,
            value: true,
            from_window: 1,
        }],
        clock_skew: vec![LayerSkew {
            layer: 1,
            skew_s: 10.0,
        }],
    }
}

fn run(config: CampaignConfig, seed: u64, threads: usize) -> Vec<Record> {
    Campaign::new(config, seed)
        .threads(threads)
        .run_in_memory()
        .records()
        .to_vec()
}

#[test]
fn zero_fault_plan_is_byte_identical_to_no_plan() {
    let no_plan = run(base_config(), 5, 1);
    let empty_plan = run(
        CampaignConfig {
            faults: FaultPlan::parse_json("{}").unwrap(),
            ..base_config()
        },
        5,
        2,
    );
    let lines = |records: &[Record]| -> String {
        records.iter().map(|r| r.to_json_line() + "\n").collect()
    };
    assert_eq!(lines(&no_plan), lines(&empty_plan));
}

#[test]
fn faulted_campaign_is_thread_count_independent() {
    let config = CampaignConfig {
        faults: spicy_plan(),
        ..base_config()
    };
    let reference = run(config.clone(), 7, 1);
    assert!(!reference.is_empty());
    for threads in [2, 3, 8] {
        assert_eq!(
            run(config.clone(), 7, threads),
            reference,
            "threads={threads}"
        );
    }
    // And reproducible outright.
    assert_eq!(run(config, 7, 1), reference);
}

#[test]
fn faulted_campaign_resumes_byte_identically() {
    let config = CampaignConfig {
        faults: spicy_plan(),
        ..base_config()
    };
    let mut reference_sink = MemorySink::new();
    Campaign::new(config.clone(), 9)
        .threads(2)
        .run(&mut reference_sink)
        .unwrap();
    let reference = reference_sink.into_records();

    // Interrupt after one window, resume with a different thread count.
    let mut head_sink = MemorySink::new();
    let mut halted = Campaign::new(config.clone(), 9)
        .threads(1)
        .halt_after_windows(1);
    halted.run(&mut head_sink).unwrap();
    let state = halted.export_state();
    let mut tail_sink = MemorySink::new();
    Campaign::resume(config, 9, &state)
        .unwrap()
        .threads(4)
        .run(&mut tail_sink)
        .unwrap();

    let mut resumed = head_sink.into_records();
    resumed.extend(tail_sink.into_records());
    assert_eq!(resumed, reference);
}

#[test]
fn resume_under_a_changed_plan_is_refused() {
    let config = CampaignConfig {
        faults: spicy_plan(),
        ..base_config()
    };
    let mut halted = Campaign::new(config.clone(), 9).halt_after_windows(1);
    halted.run(&mut MemorySink::new()).unwrap();
    let state = halted.export_state();
    let mut changed = config;
    changed.faults.brownouts[0].until_window = 2;
    assert!(
        Campaign::resume(changed, 9, &state).is_err(),
        "a changed fault plan must fail the config-hash check"
    );
}

#[test]
fn brownout_removes_exactly_the_scheduled_device_month() {
    let clean = run(base_config(), 11, 1);
    let config = CampaignConfig {
        faults: FaultPlan {
            brownouts: vec![Brownout {
                board: Some(2),
                from_window: 1,
                until_window: 1,
            }],
            ..FaultPlan::default()
        },
        ..base_config()
    };
    let mut campaign = Campaign::new(config, 11);
    let dataset = campaign.run_in_memory();
    // Board 2's window-1 records (window 1 = March 2017) vanish; every
    // other board's stream is untouched byte-for-byte — the brownout
    // decision is a pure function of the plan, so it cannot leak into
    // other boards through scheduling or shared RNG state.
    assert_eq!(dataset.records().len(), clean.len() - 10);
    assert!(
        !dataset
            .records()
            .iter()
            .any(|r| r.device == BoardId(2) && r.timestamp.datetime().date.month == 3),
        "browned-out window must produce no records"
    );
    let others = |records: &[Record]| -> Vec<Record> {
        records
            .iter()
            .filter(|r| r.device != BoardId(2))
            .cloned()
            .collect()
    };
    assert_eq!(others(dataset.records()), others(&clean));
    // Board 2 keeps its schedule (seq/timestamps) outside the brownout;
    // its post-brownout *data* legitimately differs from the clean run
    // because the missed power-ups never drew from its stream.
    let board2 = |records: &[Record]| -> Vec<(u64, i64)> {
        records
            .iter()
            .filter(|r| r.device == BoardId(2) && r.timestamp.datetime().date.month != 3)
            .map(|r| (r.seq, r.timestamp.0))
            .collect()
    };
    assert_eq!(board2(dataset.records()), board2(&clean));
    // The hole is reported, not silently averaged over.
    let tally = campaign.fault_tally();
    assert_eq!(tally.browned_out_windows, 1);
    assert_eq!(tally.missed_power_ups, 10);
    let gaps = campaign.gap_records();
    assert_eq!(gaps.len(), 1);
    assert_eq!(gaps[0].device, BoardId(2));
    assert_eq!(gaps[0].window, 1);
    assert_eq!(gaps[0].year_month, (2017, 3));
    assert_eq!(gaps[0].missed_reads, 10);
    assert_eq!(gaps[0].cause, GapCause::Brownout);
}

#[test]
fn stuck_cluster_forces_bits_from_its_window_on() {
    let config = CampaignConfig {
        faults: FaultPlan {
            stuck_clusters: vec![StuckCluster {
                board: 0,
                cell: 8,
                len: 8,
                value: true,
                from_window: 1,
            }],
            ..FaultPlan::default()
        },
        ..base_config()
    };
    let mut campaign = Campaign::new(config, 13);
    let dataset = campaign.run_in_memory();
    let clean = run(base_config(), 13, 1);
    for (faulted, clean) in dataset.records().iter().zip(&clean) {
        assert_eq!(faulted.device, clean.device);
        assert_eq!(faulted.seq, clean.seq);
        let month = faulted.timestamp.datetime().date.month;
        if faulted.device == BoardId(0) && month >= 3 {
            for i in 8..16 {
                assert_eq!(faulted.data.get(i), Some(true), "cell {i} not stuck");
            }
        } else {
            assert_eq!(faulted.data, clean.data, "untouched record changed");
        }
    }
    // 8 cells × 10 reads × 2 windows (months 1 and 2).
    assert_eq!(campaign.fault_tally().stuck_cells_forced, 8 * 10 * 2);
}

#[test]
fn clock_skew_shifts_one_layer_only() {
    let clean = run(base_config(), 17, 1);
    let skewed = run(
        CampaignConfig {
            faults: FaultPlan {
                clock_skew: vec![LayerSkew {
                    layer: 1,
                    skew_s: 10.0,
                }],
                ..FaultPlan::default()
            },
            ..base_config()
        },
        17,
        1,
    );
    assert_eq!(skewed.len(), clean.len());
    for (s, c) in skewed.iter().zip(&clean) {
        assert_eq!(s.device, c.device);
        assert_eq!(s.data, c.data, "skew must not touch the data");
        // Odd board indices sit on layer 1.
        let expected_shift = if s.device.0 % 2 == 1 { 10 } else { 0 };
        assert_eq!(
            s.timestamp.seconds_since(c.timestamp),
            expected_shift,
            "board {}",
            s.device.0
        );
    }
}

#[test]
fn i2c_burst_drops_are_gap_recorded_and_survivors_are_clean() {
    let clean = run(base_config(), 19, 1);
    let config = CampaignConfig {
        i2c_retries: 1,
        faults: FaultPlan {
            i2c_bursts: vec![I2cBurst {
                board: Some(1),
                from_window: 0,
                until_window: 2,
                nack_rate: 0.5,
                corruption_rate: 0.3,
            }],
            ..FaultPlan::default()
        },
        ..base_config()
    };
    let ins = Instruments::new();
    let mut campaign = Campaign::new(config, 19).instruments(&ins);
    let dataset = campaign.run_in_memory();
    let summary = dataset.summary();
    assert!(summary.dropped > 0, "burst must drop read-outs");
    assert!(summary.retries > 0, "burst must trigger retries");
    // Delivered records are bit-exact copies of the clean run's — injected
    // transport faults delay or drop read-outs but never corrupt the
    // payload that finally lands, and never touch other boards.
    for faulted in dataset.records() {
        let original = clean
            .iter()
            .find(|c| c.device == faulted.device && c.seq == faulted.seq)
            .expect("every surviving record exists in the clean run");
        assert_eq!(faulted, original);
    }
    let tally = campaign.fault_tally();
    assert!(tally.injected_nacks > 0);
    assert!(tally.injected_corruptions > 0);
    assert!(tally.retry_backoff_ms >= summary.retries);
    // Gaps name board 1 only, with RetriesExhausted.
    assert!(!campaign.gap_records().is_empty());
    for gap in campaign.gap_records() {
        assert_eq!(gap.device, BoardId(1));
        assert_eq!(gap.cause, GapCause::RetriesExhausted);
    }
    // The faults.* / retry.* instruments mirror the tally exactly.
    let snap = ins.snapshot();
    assert_eq!(snap.counter("faults.injected_nacks"), tally.injected_nacks);
    assert_eq!(
        snap.counter("faults.injected_corruptions"),
        tally.injected_corruptions
    );
    assert_eq!(snap.counter("retry.attempts"), summary.retries);
    assert_eq!(snap.counter("retry.exhausted"), summary.dropped);
    assert_eq!(snap.counter("retry.backoff_ms"), tally.retry_backoff_ms);
    assert_eq!(snap.counter("faults.browned_out_windows"), 0);
}

#[test]
fn fault_tallies_are_thread_count_independent() {
    let config = CampaignConfig {
        faults: spicy_plan(),
        ..base_config()
    };
    let mut one = Campaign::new(config.clone(), 23).threads(1);
    one.run(&mut MemorySink::new()).unwrap();
    let mut eight = Campaign::new(config, 23).threads(8);
    eight.run(&mut MemorySink::new()).unwrap();
    assert_eq!(one.fault_tally(), eight.fault_tally());
    assert_eq!(one.gap_records(), eight.gap_records());
}
