//! Allocation-count regression guard for the steady-state decode paths.
//!
//! The JSON fast path decodes a canonical line with exactly one heap
//! allocation (the record's own word storage); the line `String` and
//! batching overhead add a few more. If the reader regresses to the
//! tree-parsing path — which builds a `JsonValue` object per line, with
//! per-field key strings — the per-record allocation count jumps by an
//! order of magnitude, and this test fails long before anyone profiles it.

use pufbits::BitVec;
use puftestbed::store::{
    BinaryRecordReader, BinarySink, JsonLinesSink, ParallelRecordReader, RecordSink,
};
use puftestbed::{BoardId, Record, Timestamp};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn dataset(n: u64, bits: usize) -> Vec<Record> {
    (0..n)
        .map(|seq| {
            let data: BitVec = (0..bits)
                .map(|i| (seq.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (i % 64)) & 1 == 1)
                .collect();
            Record::new(
                BoardId((seq % 16) as u8),
                seq,
                Timestamp(1_486_512_000 + seq as i64 * 5),
                data,
            )
        })
        .collect()
}

/// One test (not several) so the global counter is never shared between
/// concurrently running measurements.
#[test]
fn steady_state_decode_allocates_a_small_constant_per_record() {
    const RECORDS: u64 = 2000;
    const BITS: usize = 1024;
    let records = dataset(RECORDS, BITS);

    let mut json = JsonLinesSink::new(Vec::new());
    let mut binary = BinarySink::new(Vec::new()).unwrap();
    for r in &records {
        json.record(r).unwrap();
        binary.record(r).unwrap();
    }
    let json_bytes = json.into_inner().unwrap();
    let binary_bytes = binary.into_inner().unwrap();

    // JSON: line String + word storage per record, plus amortized batch
    // overhead. The tree parser would spend dozens per record.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let reader = ParallelRecordReader::spawn_with(std::io::Cursor::new(json_bytes), 2, 64, None);
    let mut decoded = 0u64;
    for item in reader {
        let record = item.unwrap();
        assert_eq!(record.data.len(), BITS);
        decoded += 1;
    }
    let json_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(decoded, RECORDS);
    let per_record = json_allocs as f64 / RECORDS as f64;
    assert!(
        per_record <= 8.0,
        "json decode allocates {per_record:.1} times per record ({json_allocs} total)"
    );

    // Binary: frame buffer reuse keeps it at least as lean.
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let reader = BinaryRecordReader::spawn_with(std::io::Cursor::new(binary_bytes), 2, 64, None);
    let mut decoded = 0u64;
    for item in reader {
        let record = item.unwrap();
        assert_eq!(record.data.len(), BITS);
        decoded += 1;
    }
    let binary_allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(decoded, RECORDS);
    let per_record = binary_allocs as f64 / RECORDS as f64;
    assert!(
        per_record <= 8.0,
        "binary decode allocates {per_record:.1} times per record ({binary_allocs} total)"
    );
}
