//! Property-based invariants of the rig simulation.

use proptest::prelude::*;
use pufbits::BitVec;
use puftestbed::i2c::{decode_message, encode_message};
use puftestbed::schedule::{two_layer_schedule, HandshakeMachine, LayerPhase};
use puftestbed::store::json::{self, JsonValue};
use puftestbed::store::{ParseRecordError, Record};
use puftestbed::{BoardId, CalendarDate, Timestamp};

proptest! {
    #[test]
    fn i2c_messages_round_trip(payload in prop::collection::vec(any::<u8>(), 0..200)) {
        let frames = encode_message(&payload);
        prop_assert_eq!(decode_message(&frames).unwrap(), payload);
    }

    #[test]
    fn i2c_detects_any_single_bit_flip(payload in prop::collection::vec(any::<u8>(), 1..100), frame_pick in any::<u16>(), bit_pick in any::<u16>()) {
        let mut frames = encode_message(&payload);
        let fi = usize::from(frame_pick) % frames.len();
        if !frames[fi].is_empty() {
            let bi = usize::from(bit_pick) % (frames[fi].len() * 8);
            frames[fi][bi / 8] ^= 1 << (bi % 8);
            prop_assert!(decode_message(&frames).is_err(), "flip went undetected");
        }
    }

    #[test]
    fn calendar_round_trips(days in -100_000i64..100_000) {
        let date = CalendarDate::from_days_since_epoch(days);
        prop_assert_eq!(date.days_since_epoch(), days);
        prop_assert!((1..=12).contains(&date.month));
        prop_assert!((1..=31).contains(&date.day));
    }

    #[test]
    fn timestamps_decompose_consistently(secs in -4_000_000_000i64..4_000_000_000) {
        let t = Timestamp(secs);
        let dt = t.datetime();
        prop_assert!(dt.hour < 24 && dt.minute < 60 && dt.second < 60);
        // Rebuild the timestamp from the decomposition.
        let rebuilt = Timestamp::from_date(dt.date).0
            + i64::from(dt.hour) * 3600
            + i64::from(dt.minute) * 60
            + i64::from(dt.second);
        prop_assert_eq!(rebuilt, secs);
    }

    #[test]
    fn records_survive_the_json_store(device in 0u8..32, seq in any::<u32>(), ts in -2_000_000_000i64..2_000_000_000, bits in prop::collection::vec(any::<bool>(), 0..200)) {
        let record = Record::new(
            BoardId(device),
            u64::from(seq),
            Timestamp(ts),
            BitVec::from_bits(bits),
        );
        let line = record.to_json_line();
        prop_assert_eq!(Record::parse_json_line(&line).unwrap(), record);
    }

    #[test]
    fn extreme_records_round_trip_losslessly(device in any::<u8>(), seq in any::<u64>(), ts in any::<i64>(), bits in prop::collection::vec(any::<bool>(), 1..64)) {
        // The whole u64/i64 domains, including values a f64 cannot hold
        // exactly: the store must never route integers through floats.
        let record = Record::new(BoardId(device), seq, Timestamp(ts), BitVec::from_bits(bits));
        let parsed = Record::parse_json_line(&record.to_json_line()).unwrap();
        prop_assert_eq!(parsed.seq, record.seq);
        prop_assert_eq!(parsed.timestamp, record.timestamp);
        prop_assert_eq!(parsed, record);
    }

    #[test]
    fn records_survive_the_binary_store(device in any::<u8>(), seq in any::<u64>(), ts in any::<i64>(), bits in prop::collection::vec(any::<bool>(), 0..300)) {
        // Full u64/i64 domains including negative timestamps, plus empty
        // and non-byte-aligned patterns.
        let record = Record::new(BoardId(device), seq, Timestamp(ts), BitVec::from_bits(bits));
        let mut buf = Vec::new();
        record.encode_binary(&mut buf);
        let (back, used) = Record::decode_binary(&buf).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(back, record);
    }

    #[test]
    fn binary_and_json_stores_agree(device in 0u8..32, seq in any::<u64>(), ts in any::<i64>(), bits in prop::collection::vec(any::<bool>(), 0..300)) {
        let record = Record::new(BoardId(device), seq, Timestamp(ts), BitVec::from_bits(bits));
        let mut buf = Vec::new();
        record.encode_binary(&mut buf);
        let via_binary = Record::decode_binary(&buf).unwrap().0;
        let via_json = Record::parse_json_line(&record.to_json_line()).unwrap();
        prop_assert_eq!(via_binary, via_json);
    }

    #[test]
    fn binary_store_detects_any_single_byte_corruption(seq in any::<u64>(), ts in any::<i64>(), bits in prop::collection::vec(any::<bool>(), 1..300), pos_pick in any::<u16>(), xor in 1u8..=255) {
        let record = Record::new(BoardId(7), seq, Timestamp(ts), BitVec::from_bits(bits));
        let mut buf = Vec::new();
        record.encode_binary(&mut buf);
        // Corrupt any byte past the length prefix (a corrupt prefix is a
        // framing error with its own tests); the CRC must catch it.
        let pos = 4 + usize::from(pos_pick) % (buf.len() - 4);
        buf[pos] ^= xor;
        prop_assert!(Record::decode_binary(&buf).is_err(), "flip at {} went undetected", pos);
    }

    #[test]
    fn oversized_devices_are_rejected_not_truncated(device in 256u64..=u64::MAX) {
        let line = format!(
            r#"{{"device":{device},"seq":0,"timestamp":0,"bits":8,"data":"00"}}"#
        );
        let err = Record::parse_json_line(&line).unwrap_err();
        prop_assert!(matches!(err, ParseRecordError::OutOfRange { field: "device", .. }), "{:?}", err);
    }

    #[test]
    fn negative_sequence_numbers_are_rejected_not_clamped(seq in i64::MIN..0) {
        let line = format!(
            r#"{{"device":0,"seq":{seq},"timestamp":0,"bits":8,"data":"00"}}"#
        );
        let err = Record::parse_json_line(&line).unwrap_err();
        prop_assert!(matches!(err, ParseRecordError::OutOfRange { field: "seq", .. }), "{:?}", err);
    }

    #[test]
    fn json_strings_round_trip(s in "\\PC{0,60}") {
        let v = JsonValue::String(s.clone());
        let parsed = json::parse(&v.to_string()).unwrap();
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn schedule_is_sorted_and_complete(cycles in 1u64..200) {
        let schedule = two_layer_schedule(cycles);
        prop_assert_eq!(schedule.len() as u64, cycles * 2);
        for w in schedule.windows(2) {
            prop_assert!(w[0].time_s < w[1].time_s);
        }
        let per_layer = schedule.iter().filter(|r| r.layer == 0).count() as u64;
        prop_assert_eq!(per_layer, cycles);
    }

    #[test]
    fn handshake_stays_in_lockstep(steps in 1usize..5000) {
        let mut hs = HandshakeMachine::new();
        for _ in 0..steps {
            hs.step();
            let both_powered = matches!(hs.phase(0), LayerPhase::PoweredOn | LayerPhase::ReadingOut)
                && matches!(hs.phase(1), LayerPhase::PoweredOn | LayerPhase::ReadingOut);
            prop_assert!(!both_powered);
        }
        prop_assert!(hs.cycles(0).abs_diff(hs.cycles(1)) <= 1);
    }
}
