//! 6T SRAM cell power-up model with process variation, noise, and
//! technology profiles.
//!
//! # Model
//!
//! This crate implements the *hidden-variable* SRAM PUF cell model the paper
//! builds its analysis on (Maes, CHES 2013 — the paper's ref \[18\]). Each 6T
//! cell (Fig. 1 of the paper: two cross-coupled inverters) carries a static
//! **mismatch** `m` — the effective threshold-voltage imbalance
//! `Vth,P1 − Vth,P2` of its PMOS pair plus every other fixed asymmetry,
//! expressed in units of the power-up noise's standard deviation. At each
//! power-up an independent Gaussian noise sample `n ~ N(0, 1)` perturbs the
//! race between the inverters, and the cell resolves to
//!
//! ```text
//! Q = 1  iff  m + n > 0      ⇒      Pr(Q = 1) = Phi(m)
//! ```
//!
//! Manufacturing draws `m ~ N(mu, sigma^2)` independently per cell
//! ([`PopulationModel`]). A nonzero `mu` reproduces the systematic bias the
//! paper observes (fractional Hamming weight 60–70 % instead of 50 %), which
//! stems from asymmetries in the cell layout.
//!
//! All of the paper's Table I metrics are expectations under this model and
//! are available in closed/quadrature form from [`PopulationModel`]; the
//! [`calibrate`] module inverts them so a profile hits measured targets.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use sramcell::{Environment, SramArray, TechnologyProfile};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let profile = TechnologyProfile::atmega32u4();
//! let sram = SramArray::generate(&profile, 8 * 1024, &mut rng);
//! let readout = sram.power_up(&Environment::nominal(&profile), &mut rng);
//! let fhw = readout.fractional_hamming_weight();
//! assert!(fhw > 0.55 && fhw < 0.70, "biased toward one like the paper: {fhw}");
//! ```

mod array;
mod batch;
pub mod calibrate;
mod cell;
mod env;
mod population;
pub mod ramp;
mod tech;

pub use array::{ArrayState, SramArray};
pub use batch::PowerUpKernel;
pub use cell::Cell;
pub use env::Environment;
pub use population::PopulationModel;
pub use tech::TechnologyProfile;
