//! Intelligent supply-ramp adaptation (the paper's ref \[17\]).
//!
//! Cortez et al. (IEEE TCAD 2015) reduce temperature-induced PUF noise by
//! adapting the supply's ramp-up time: slower ramps give the cross-coupled
//! inverters longer to resolve their static mismatch, suppressing noise —
//! at the cost of boot latency. [`RampAdapter`] implements that controller
//! against this crate's environment model: it probes the device's measured
//! instability at candidate ramp times and picks the **fastest** ramp that
//! still meets the reliability target.

use crate::{Environment, SramArray};
use pufbits::OnesCounter;
use rand::Rng;
use std::error::Error;
use std::fmt;

/// Error from [`RampAdapter::adapt`].
#[derive(Debug, Clone, PartialEq)]
pub struct UnreachableTargetError {
    /// The requested maximum instability.
    pub target: f64,
    /// Best (lowest) instability achieved, at the slowest allowed ramp.
    pub best: f64,
    /// The ramp time that achieved it, microseconds.
    pub at_ramp_us: f64,
}

impl fmt::Display for UnreachableTargetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "instability target {:.3}% unreachable: best {:.3}% at {} µs",
            self.target * 100.0,
            self.best * 100.0,
            self.at_ramp_us
        )
    }
}

impl Error for UnreachableTargetError {}

/// The ramp-time adaptation controller.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sramcell::ramp::RampAdapter;
/// use sramcell::{Environment, SramArray, TechnologyProfile};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(50);
/// let profile = TechnologyProfile::atmega32u4();
/// let sram = SramArray::generate(&profile, 4096, &mut rng);
/// let hot = Environment { temp_c: 85.0, ..Environment::nominal(&profile) };
///
/// let adapter = RampAdapter::new(0.012, 20.0, 400.0, 40);
/// let adapted = adapter.adapt(&sram, hot, &mut rng)?;
/// // Heat is compensated by a slower ramp.
/// assert!(adapted.ramp_us > hot.ramp_us);
/// # Ok::<(), sramcell::ramp::UnreachableTargetError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampAdapter {
    /// Maximum tolerated instability (mean fractional flip rate vs the
    /// majority pattern) after adaptation.
    pub target_instability: f64,
    /// Fastest ramp the supply supports, microseconds.
    pub min_ramp_us: f64,
    /// Slowest acceptable ramp (boot-latency budget), microseconds.
    pub max_ramp_us: f64,
    /// Power-ups spent probing each candidate ramp.
    pub probe_reads: u32,
}

impl RampAdapter {
    /// Creates an adapter.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_ramp_us <= max_ramp_us`,
    /// `target_instability ∈ (0, 1)`, and `probe_reads >= 2`.
    pub fn new(
        target_instability: f64,
        min_ramp_us: f64,
        max_ramp_us: f64,
        probe_reads: u32,
    ) -> Self {
        assert!(
            target_instability > 0.0 && target_instability < 1.0,
            "target instability must be a proportion"
        );
        assert!(
            min_ramp_us > 0.0 && min_ramp_us <= max_ramp_us,
            "invalid ramp range [{min_ramp_us}, {max_ramp_us}]"
        );
        assert!(probe_reads >= 2, "probing needs at least two reads");
        Self {
            target_instability,
            min_ramp_us,
            max_ramp_us,
            probe_reads,
        }
    }

    /// Measured instability at one candidate environment: mean fraction of
    /// cells disagreeing with the window's majority pattern.
    pub fn probe<R: Rng + ?Sized>(&self, sram: &SramArray, env: &Environment, rng: &mut R) -> f64 {
        let mut counter = OnesCounter::new(sram.len());
        let readouts: Vec<_> = (0..self.probe_reads)
            .map(|_| sram.power_up(env, rng))
            .collect();
        for r in &readouts {
            counter.add(r).expect("constant width");
        }
        let majority = counter.majority();
        readouts
            .iter()
            .map(|r| r.fractional_hamming_distance(&majority))
            .sum::<f64>()
            / f64::from(self.probe_reads)
    }

    /// Finds the fastest ramp within the budget whose measured instability
    /// meets the target, by binary search over the (monotone) ramp-noise
    /// relationship. Returns the adapted environment.
    ///
    /// # Errors
    ///
    /// Returns [`UnreachableTargetError`] if even the slowest allowed ramp
    /// misses the target at this temperature.
    pub fn adapt<R: Rng + ?Sized>(
        &self,
        sram: &SramArray,
        base: Environment,
        rng: &mut R,
    ) -> Result<Environment, UnreachableTargetError> {
        let env_at = |ramp_us: f64| Environment { ramp_us, ..base };
        let slowest = env_at(self.max_ramp_us);
        let at_slowest = self.probe(sram, &slowest, rng);
        if at_slowest > self.target_instability {
            return Err(UnreachableTargetError {
                target: self.target_instability,
                best: at_slowest,
                at_ramp_us: self.max_ramp_us,
            });
        }
        if self.probe(sram, &env_at(self.min_ramp_us), rng) <= self.target_instability {
            return Ok(env_at(self.min_ramp_us));
        }
        let (mut lo, mut hi) = (self.min_ramp_us, self.max_ramp_us);
        for _ in 0..16 {
            let mid = 0.5 * (lo + hi);
            if self.probe(sram, &env_at(mid), rng) <= self.target_instability {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Ok(env_at(hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TechnologyProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (SramArray, Environment, StdRng) {
        let profile = TechnologyProfile::atmega32u4();
        let mut rng = StdRng::seed_from_u64(200);
        let sram = SramArray::generate(&profile, 8192, &mut rng);
        let env = Environment::nominal(&profile);
        (sram, env, rng)
    }

    #[test]
    fn adapted_environment_meets_the_target() {
        let (sram, nominal, mut rng) = fixture();
        let hot = Environment {
            temp_c: 85.0,
            ..nominal
        };
        let adapter = RampAdapter::new(0.012, 20.0, 450.0, 50);
        let adapted = adapter.adapt(&sram, hot, &mut rng).unwrap();
        let achieved = adapter.probe(&sram, &adapted, &mut rng);
        // Allow probe-to-probe Monte-Carlo jitter above the target.
        assert!(achieved < 0.016, "achieved {achieved}");
        assert!(adapted.ramp_us > hot.ramp_us, "heat needs a slower ramp");
        assert_eq!(adapted.temp_c, 85.0, "temperature untouched");
    }

    #[test]
    fn hotter_devices_need_slower_ramps() {
        let (sram, nominal, mut rng) = fixture();
        let adapter = RampAdapter::new(0.012, 10.0, 500.0, 50);
        let cold = adapter
            .adapt(
                &sram,
                Environment {
                    temp_c: 0.0,
                    ..nominal
                },
                &mut rng,
            )
            .unwrap();
        let hot = adapter
            .adapt(
                &sram,
                Environment {
                    temp_c: 95.0,
                    ..nominal
                },
                &mut rng,
            )
            .unwrap();
        assert!(
            hot.ramp_us > cold.ramp_us,
            "hot {} µs vs cold {} µs",
            hot.ramp_us,
            cold.ramp_us
        );
    }

    #[test]
    fn impossible_targets_are_reported_with_the_best_effort() {
        let (sram, nominal, mut rng) = fixture();
        // 0.01 % instability is beyond what any ramp achieves at 105 °C
        // with this budget.
        let adapter = RampAdapter::new(0.0001, 20.0, 120.0, 50);
        let err = adapter
            .adapt(
                &sram,
                Environment {
                    temp_c: 105.0,
                    ..nominal
                },
                &mut rng,
            )
            .unwrap_err();
        assert!(err.best > err.target);
        assert_eq!(err.at_ramp_us, 120.0);
        assert!(err.to_string().contains("unreachable"));
    }

    #[test]
    fn easy_targets_use_the_fastest_ramp() {
        let (sram, nominal, mut rng) = fixture();
        // 20 % instability is trivially met even at the fastest ramp.
        let adapter = RampAdapter::new(0.20, 25.0, 400.0, 30);
        let adapted = adapter.adapt(&sram, nominal, &mut rng).unwrap();
        assert_eq!(adapted.ramp_us, 25.0);
    }

    #[test]
    #[should_panic(expected = "invalid ramp range")]
    fn inverted_ramp_range_rejected() {
        RampAdapter::new(0.03, 500.0, 100.0, 10);
    }
}
