//! Operating environment and its effect on power-up noise.

use crate::TechnologyProfile;

/// Operating conditions of one power-up: temperature, supply voltage, and
/// supply ramp time.
///
/// The paper runs its campaign at *nominal* conditions (room temperature,
/// 5 V); the environment type exists so the same machinery can reproduce the
/// accelerated-aging comparator (85 °C, raised VDD) and the
/// ramp-time/temperature noise effects of the paper's ref \[17\].
///
/// The environment affects the model in two ways:
///
/// * **Noise scale** ([`Environment::noise_sigma`]): the effective power-up
///   noise grows linearly with temperature above nominal and with faster
///   supply ramps, making marginal cells flakier.
/// * **Aging acceleration** (via
///   [`TechnologyProfile::acceleration_factor`]): higher temperature and
///   voltage accelerate BTI stress.
///
/// # Examples
///
/// ```
/// use sramcell::{Environment, TechnologyProfile};
///
/// let profile = TechnologyProfile::atmega32u4();
/// let nominal = Environment::nominal(&profile);
/// assert!((nominal.noise_sigma(&profile) - 1.0).abs() < 1e-12);
///
/// let hot = Environment { temp_c: 85.0, ..nominal };
/// assert!(hot.noise_sigma(&profile) > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Environment {
    /// Ambient temperature in degrees Celsius.
    pub temp_c: f64,
    /// Supply voltage in volts.
    pub vdd_v: f64,
    /// Supply ramp time in microseconds.
    pub ramp_us: f64,
}

impl Environment {
    /// The profile's nominal environment.
    pub fn nominal(profile: &TechnologyProfile) -> Self {
        Self {
            temp_c: profile.temp_c,
            vdd_v: profile.vdd_v,
            ramp_us: profile.ramp_us,
        }
    }

    /// Effective noise sigma relative to nominal (nominal = 1.0).
    ///
    /// Linear sensitivity to temperature above nominal and to ramp-time
    /// reduction below nominal, clamped to stay positive.
    pub fn noise_sigma(&self, profile: &TechnologyProfile) -> f64 {
        let temp_term = profile.noise_temp_coeff * (self.temp_c - profile.temp_c);
        let ramp_term = profile.noise_ramp_coeff * (profile.ramp_us - self.ramp_us);
        (1.0 + temp_term + ramp_term).max(0.05)
    }

    /// BTI stress acceleration factor of this environment for `profile`.
    pub fn acceleration_factor(&self, profile: &TechnologyProfile) -> f64 {
        profile.acceleration_factor(self.temp_c, self.vdd_v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_environment_is_identity() {
        let p = TechnologyProfile::atmega32u4();
        let env = Environment::nominal(&p);
        assert!((env.noise_sigma(&p) - 1.0).abs() < 1e-12);
        assert!((env.acceleration_factor(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heat_increases_noise() {
        let p = TechnologyProfile::atmega32u4();
        let hot = Environment {
            temp_c: 85.0,
            ..Environment::nominal(&p)
        };
        assert!(hot.noise_sigma(&p) > 1.1);
    }

    #[test]
    fn slow_ramp_reduces_noise() {
        let p = TechnologyProfile::atmega32u4();
        let slow = Environment {
            ramp_us: p.ramp_us * 3.0,
            ..Environment::nominal(&p)
        };
        assert!(slow.noise_sigma(&p) < 1.0);
        assert!(slow.noise_sigma(&p) > 0.0);
    }

    #[test]
    fn noise_sigma_never_collapses() {
        let p = TechnologyProfile::atmega32u4();
        let extreme = Environment {
            temp_c: -300.0,
            ..Environment::nominal(&p)
        };
        assert!(extreme.noise_sigma(&p) >= 0.05);
    }
}
