//! An SRAM array: the PUF-relevant state of one device.

use crate::{Cell, Environment, TechnologyProfile};
use pufbits::BitVec;
use pufstats::normal::sample;
use rand::Rng;

/// The SRAM array of one device: a technology profile plus one [`Cell`] per
/// bit.
///
/// On the paper's boards this is the 2.5 KB SRAM of an ATmega32u4, of which
/// the first 1 KB (8 192 cells) is read out per power cycle.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sramcell::{Environment, SramArray, TechnologyProfile};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let profile = TechnologyProfile::atmega32u4();
/// let sram = SramArray::generate(&profile, 1024, &mut rng);
/// let env = Environment::nominal(&profile);
/// let a = sram.power_up(&env, &mut rng);
/// let b = sram.power_up(&env, &mut rng);
/// // Two read-outs of the same array differ only at noisy cells.
/// assert!(a.fractional_hamming_distance(&b) < 0.10);
/// ```
#[derive(Debug, Clone)]
pub struct SramArray {
    profile: TechnologyProfile,
    cells: Vec<Cell>,
    /// Bumped on every grant of mutable cell access; lets derived caches
    /// (e.g. [`PowerUpKernel`](crate::PowerUpKernel) thresholds) detect
    /// aging-induced mismatch changes without hashing the cells.
    epoch: u64,
}

/// The complete serializable state of an [`SramArray`]: one mismatch and one
/// drift bias per cell, in cell order.
///
/// The technology profile is deliberately *not* part of the state — it is
/// configuration, supplied again at restore time (and guarded by the
/// campaign checkpoint's config hash), so a state snapshot stays a pure
/// value of the device.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sramcell::{SramArray, TechnologyProfile};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let profile = TechnologyProfile::atmega32u4();
/// let sram = SramArray::generate(&profile, 64, &mut rng);
/// let state = sram.export_state();
/// let restored = SramArray::from_state(&profile, &state);
/// assert_eq!(restored, sram);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayState {
    /// Per-cell threshold mismatch, in noise-sigma units.
    pub mismatch: Vec<f64>,
    /// Per-cell BTI drift bias (the cell's fixed drift asymmetry draw).
    pub drift_bias: Vec<f64>,
}

// The aging epoch is cache-invalidation metadata, not device state: two
// arrays with identical cells are the same device regardless of how many
// times mutable access was handed out.
impl PartialEq for SramArray {
    fn eq(&self, other: &Self) -> bool {
        self.profile == other.profile && self.cells == other.cells
    }
}

impl SramArray {
    /// Manufactures a fresh array of `bits` cells by sampling the profile's
    /// mismatch population.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    pub fn generate<R: Rng + ?Sized>(
        profile: &TechnologyProfile,
        bits: usize,
        rng: &mut R,
    ) -> Self {
        assert!(bits > 0, "an SRAM array needs at least one cell");
        let pop = profile.population;
        // Device-level systematic bias: one draw shared by every cell of
        // this array (board-to-board HW spread).
        let device_offset = sample(rng, 0.0, profile.device_bias_sigma);
        let cells = (0..bits)
            .map(|_| {
                let mismatch = device_offset + sample(rng, pop.mu, pop.sigma);
                let drift_bias = sample(rng, 0.0, 1.0);
                Cell::with_drift_bias(mismatch, drift_bias)
            })
            .collect();
        Self {
            profile: profile.clone(),
            cells,
            epoch: 0,
        }
    }

    /// Builds an array from explicit cells (for tests and fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `cells` is empty.
    pub fn from_cells(profile: &TechnologyProfile, cells: Vec<Cell>) -> Self {
        assert!(!cells.is_empty(), "an SRAM array needs at least one cell");
        Self {
            profile: profile.clone(),
            cells,
            epoch: 0,
        }
    }

    /// Number of cells (bits).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if the array holds no cells (never true for arrays
    /// built through the public constructors).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The technology profile the array was manufactured in.
    pub fn profile(&self) -> &TechnologyProfile {
        &self.profile
    }

    /// Read access to the cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Mutable access to the cells (used by the aging simulator). Every
    /// grant bumps the aging [`epoch`](Self::epoch), conservatively assuming
    /// the caller changes mismatches.
    pub fn cells_mut(&mut self) -> &mut [Cell] {
        self.epoch += 1;
        &mut self.cells
    }

    /// The aging epoch: a counter of mutable-access grants, used by derived
    /// caches to detect that per-cell thresholds are stale.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Exports the complete per-cell state (for checkpointing).
    pub fn export_state(&self) -> ArrayState {
        ArrayState {
            mismatch: self.cells.iter().map(Cell::mismatch).collect(),
            drift_bias: self.cells.iter().map(Cell::drift_bias).collect(),
        }
    }

    /// Overwrites the per-cell state from a snapshot, bumping the aging
    /// epoch so derived caches re-derive their thresholds.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's cell count differs from this array's, or if
    /// any restored value is not finite (callers restoring from untrusted
    /// bytes must validate first — the campaign checkpoint reader does).
    pub fn restore_state(&mut self, state: &ArrayState) {
        assert_eq!(
            state.mismatch.len(),
            self.cells.len(),
            "state cell count does not match the array"
        );
        assert_eq!(
            state.drift_bias.len(),
            self.cells.len(),
            "state drift-bias count does not match the array"
        );
        for (cell, (&m, &d)) in self
            .cells_mut()
            .iter_mut()
            .zip(state.mismatch.iter().zip(&state.drift_bias))
        {
            *cell = Cell::with_drift_bias(m, d);
        }
    }

    /// Rebuilds an array from a state snapshot under `profile`.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot is empty, its two vectors disagree in length,
    /// or any value is not finite.
    pub fn from_state(profile: &TechnologyProfile, state: &ArrayState) -> Self {
        assert_eq!(
            state.mismatch.len(),
            state.drift_bias.len(),
            "state vectors must agree in length"
        );
        let cells = state
            .mismatch
            .iter()
            .zip(&state.drift_bias)
            .map(|(&m, &d)| Cell::with_drift_bias(m, d))
            .collect();
        Self::from_cells(profile, cells)
    }

    /// Simulates one power-up read-out under `env`.
    pub fn power_up<R: Rng + ?Sized>(&self, env: &Environment, rng: &mut R) -> BitVec {
        let noise = env.noise_sigma(&self.profile);
        self.cells.iter().map(|c| c.power_up(noise, rng)).collect()
    }

    /// Per-cell one-probabilities under `env`.
    pub fn one_probabilities(&self, env: &Environment) -> Vec<f64> {
        let noise = env.noise_sigma(&self.profile);
        self.cells
            .iter()
            .map(|c| c.one_probability(noise))
            .collect()
    }

    /// The noise-free preferred pattern (each cell's majority state),
    /// packed a word at a time.
    pub fn preferred_pattern(&self) -> BitVec {
        let mut words = vec![0u64; self.cells.len().div_ceil(64)];
        for (word, chunk) in words.iter_mut().zip(self.cells.chunks(64)) {
            for (bit, cell) in chunk.iter().enumerate() {
                *word |= u64::from(cell.preferred_state()) << bit;
            }
        }
        BitVec::from_words(words, self.cells.len())
    }

    /// Expected fractional Hamming weight under `env` (mean one-probability
    /// over cells) — the array-level analytic counterpart of a measured FHW.
    pub fn expected_fhw(&self, env: &Environment) -> f64 {
        let noise = env.noise_sigma(&self.profile);
        let sum: f64 = self.cells.iter().map(|c| c.one_probability(noise)).sum();
        sum / self.cells.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_array(bits: usize, seed: u64) -> SramArray {
        let mut rng = StdRng::seed_from_u64(seed);
        SramArray::generate(&TechnologyProfile::atmega32u4(), bits, &mut rng)
    }

    #[test]
    fn generated_array_matches_population_statistics() {
        // A single device carries a shared `device_offset` draw (sigma 0.6,
        // ≈ 0.013 in FHW units), so population statistics only emerge after
        // averaging several devices: 16 shrink the spread to ≈ 0.003.
        let devices = 16u64;
        let fhw = (0..devices)
            .map(|seed| {
                let sram = test_array(60_000 / devices as usize, seed);
                let env = Environment::nominal(sram.profile());
                sram.expected_fhw(&env)
            })
            .sum::<f64>()
            / devices as f64;
        let want = TechnologyProfile::atmega32u4().population.expected_fhw();
        assert!((fhw - want).abs() < 0.01, "fhw {fhw} vs {want}");
    }

    #[test]
    fn power_up_reproducibility_is_paper_scale() {
        let mut rng = StdRng::seed_from_u64(6);
        let sram = test_array(8192, 6);
        let env = Environment::nominal(sram.profile());
        let reference = sram.power_up(&env, &mut rng);
        let mut acc = 0.0;
        let reads = 50;
        for _ in 0..reads {
            acc += sram
                .power_up(&env, &mut rng)
                .fractional_hamming_distance(&reference);
        }
        let wchd = acc / f64::from(reads);
        // Paper start value is 2.49 %; allow generous Monte-Carlo slack.
        assert!((0.015..=0.035).contains(&wchd), "wchd {wchd}");
    }

    #[test]
    fn different_devices_are_unique() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = test_array(8192, 8);
        let b = test_array(8192, 9);
        let env = Environment::nominal(a.profile());
        let fhd = a
            .power_up(&env, &mut rng)
            .fractional_hamming_distance(&b.power_up(&env, &mut rng));
        // Paper: BCHD between 40 % and 50 %.
        assert!((0.40..=0.52).contains(&fhd), "bchd {fhd}");
    }

    #[test]
    fn preferred_pattern_is_majority_of_reads() {
        let mut rng = StdRng::seed_from_u64(10);
        let sram = test_array(2048, 11);
        let env = Environment::nominal(sram.profile());
        let preferred = sram.preferred_pattern();
        let mut counter = pufbits::OnesCounter::new(sram.len());
        for _ in 0..201 {
            counter.add(&sram.power_up(&env, &mut rng)).unwrap();
        }
        let majority = counter.majority();
        // The empirical majority agrees with the preferred state on almost
        // all cells (only near-balanced cells can disagree).
        let agreement = 1.0 - majority.fractional_hamming_distance(&preferred);
        assert!(agreement > 0.98, "agreement {agreement}");
    }

    #[test]
    fn hot_environment_increases_flakiness() {
        let mut rng = StdRng::seed_from_u64(12);
        let sram = test_array(8192, 13);
        let nominal = Environment::nominal(sram.profile());
        let hot = Environment {
            temp_c: 105.0,
            ..nominal
        };
        let preferred = sram.preferred_pattern();
        let avg = |env: &Environment, rng: &mut StdRng| {
            (0..30)
                .map(|_| {
                    sram.power_up(env, rng)
                        .fractional_hamming_distance(&preferred)
                })
                .sum::<f64>()
                / 30.0
        };
        assert!(avg(&hot, &mut rng) > avg(&nominal, &mut rng));
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_array_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        SramArray::generate(&TechnologyProfile::atmega32u4(), 0, &mut rng);
    }

    #[test]
    fn state_round_trips_exactly() {
        let sram = test_array(512, 40);
        let state = sram.export_state();
        let rebuilt = SramArray::from_state(sram.profile(), &state);
        assert_eq!(rebuilt, sram);
        // Bit-exact, not approximately equal.
        for (a, b) in sram.cells().iter().zip(rebuilt.cells()) {
            assert_eq!(a.mismatch().to_bits(), b.mismatch().to_bits());
            assert_eq!(a.drift_bias().to_bits(), b.drift_bias().to_bits());
        }
    }

    #[test]
    fn restore_state_bumps_the_epoch() {
        let mut sram = test_array(64, 41);
        let donor = test_array(64, 42);
        let before = sram.epoch();
        sram.restore_state(&donor.export_state());
        assert!(sram.epoch() > before, "caches must see the change");
        assert_eq!(sram, donor);
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn restore_with_wrong_cell_count_rejected() {
        let mut sram = test_array(64, 43);
        let donor = test_array(32, 44);
        sram.restore_state(&donor.export_state());
    }
}
