//! The manufacturing population of cell mismatches and its analytic metrics.

use pufstats::normal::phi;
use pufstats::solve::gaussian_expectation;

/// Gaussian population of cell mismatches: `m ~ N(mu, sigma^2)` in
/// noise-sigma units.
///
/// Every Table I metric of the paper is an expectation under this population
/// and is exposed here in quadrature form. These analytic values serve two
/// roles: they are the *oracle* against which the Monte-Carlo simulation is
/// property-tested, and they are the objective of the
/// [`calibrate`](crate::calibrate) solver.
///
/// # Examples
///
/// ```
/// use sramcell::PopulationModel;
///
/// let pop = PopulationModel::new(0.0, 4.0);
/// // Unbiased population: FHW = 1/2, BCHD = 1/2.
/// assert!((pop.expected_fhw() - 0.5).abs() < 1e-9);
/// assert!((pop.expected_bchd() - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationModel {
    /// Mean mismatch (bias) in noise-sigma units.
    pub mu: f64,
    /// Mismatch standard deviation in noise-sigma units.
    pub sigma: f64,
}

impl PopulationModel {
    /// Creates a population model.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0` or either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "invalid population parameters mu={mu}, sigma={sigma}"
        );
        Self { mu, sigma }
    }

    /// Expectation `E[g(m)]` over the mismatch distribution.
    pub fn expect(&self, g: impl Fn(f64) -> f64) -> f64 {
        gaussian_expectation(self.mu, self.sigma, g)
    }

    /// Expectation `E[g(p)]` over the one-probability `p = Phi(m)`.
    pub fn expect_p(&self, g: impl Fn(f64) -> f64) -> f64 {
        self.expect(|m| g(phi(m)))
    }

    /// Expected fractional Hamming weight: `E[p] = Phi(mu / sqrt(1+sigma^2))`
    /// (evaluated in closed form).
    pub fn expected_fhw(&self) -> f64 {
        phi(self.mu / (1.0 + self.sigma * self.sigma).sqrt())
    }

    /// Expected within-class fractional Hamming distance against a reference
    /// read-out sampled from the same fresh device: `E[2 p (1 − p)]`.
    pub fn expected_wchd(&self) -> f64 {
        self.expect_p(|p| 2.0 * p * (1.0 - p))
    }

    /// Expected between-class fractional Hamming distance between two
    /// independent devices: `2 · E[p] · (1 − E[p])`.
    pub fn expected_bchd(&self) -> f64 {
        let f = self.expected_fhw();
        2.0 * f * (1.0 - f)
    }

    /// Expected average min-entropy of the power-up noise,
    /// `E[−log2 max(p, 1 − p)]` — the paper's `(H_min,noise)_average`.
    pub fn expected_noise_entropy(&self) -> f64 {
        self.expect_p(|p| -p.max(1.0 - p).log2())
    }

    /// Expected fraction of *stable* cells over a window of `reads`
    /// consecutive power-ups: `E[p^reads + (1 − p)^reads]`.
    ///
    /// # Panics
    ///
    /// Panics if `reads == 0`.
    pub fn expected_stable_ratio(&self, reads: u32) -> f64 {
        assert!(reads > 0, "stable ratio needs at least one read");
        let r = i32::try_from(reads).expect("read count fits i32");
        self.expect_p(|p| p.powi(r) + (1.0 - p).powi(r))
    }

    /// Expected average min-entropy of the *PUF* (uniqueness): with the
    /// infinite-device estimator every location has one-probability
    /// `E[p]` over devices, so this is `−log2 max(E[p], 1 − E[p])`.
    ///
    /// The paper estimates the same quantity from only 16 devices, which
    /// biases the empirical value downward slightly (64.9 % measured vs
    /// 67.4 % asymptotic); see `pufassess::entropy` for the finite-sample
    /// estimator.
    pub fn expected_puf_entropy(&self) -> f64 {
        let f = self.expected_fhw();
        -f.max(1.0 - f).log2()
    }

    /// Probability density of the mismatch at `m`.
    pub fn density(&self, m: f64) -> f64 {
        pufstats::normal::pdf((m - self.mu) / self.sigma) / self.sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fhw_closed_form_matches_quadrature() {
        let pop = PopulationModel::new(1.3, 5.0);
        let quad = pop.expect_p(|p| p);
        assert!((quad - pop.expected_fhw()).abs() < 1e-8);
    }

    #[test]
    fn degenerate_population_is_point_mass() {
        let pop = PopulationModel::new(0.0, 0.0);
        assert!((pop.expected_fhw() - 0.5).abs() < 1e-12);
        assert!((pop.expected_wchd() - 0.5).abs() < 1e-12);
        assert!((pop.expected_noise_entropy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deeply_skewed_population_is_stable_and_entropy_free() {
        let pop = PopulationModel::new(40.0, 1.0);
        assert!(pop.expected_wchd() < 1e-6);
        assert!(pop.expected_noise_entropy() < 1e-6);
        assert!(pop.expected_stable_ratio(1000) > 0.999_99);
        assert!(pop.expected_fhw() > 0.999_99);
    }

    #[test]
    fn noise_entropy_exceeds_wchd_for_wide_populations() {
        // For a wide (locally flat near m = 0) population the ratio of noise
        // entropy to WCHD approaches ≈1.23 — the same ratio the paper
        // measures (3.05 % / 2.49 % = 1.22).
        let pop = PopulationModel::new(5.0, 16.0);
        let ratio = pop.expected_noise_entropy() / pop.expected_wchd();
        assert!((ratio - 1.23).abs() < 0.03, "ratio {ratio}");
    }

    #[test]
    fn stable_ratio_decreases_with_window_length() {
        let pop = PopulationModel::new(0.3, 6.0);
        let short = pop.expected_stable_ratio(10);
        let long = pop.expected_stable_ratio(1000);
        assert!(long < short);
        assert!(long > 0.0 && short < 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid population parameters")]
    fn negative_sigma_rejected() {
        PopulationModel::new(0.0, -1.0);
    }

    #[test]
    fn density_integrates_to_one() {
        let pop = PopulationModel::new(2.0, 3.0);
        // Riemann sum over ±10 sigma.
        let (lo, hi, n) = (2.0 - 30.0, 2.0 + 30.0, 6000);
        let h = (hi - lo) / n as f64;
        let total: f64 = (0..n)
            .map(|i| pop.density(lo + (i as f64 + 0.5) * h) * h)
            .sum();
        assert!((total - 1.0).abs() < 1e-6);
    }
}
