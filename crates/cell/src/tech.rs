//! Technology profiles: electrical and variation parameters per silicon node.

use crate::PopulationModel;
use std::fmt;

/// Electrical, variation, and aging parameters of one SRAM technology.
///
/// Two presets ship with the crate:
///
/// * [`TechnologyProfile::atmega32u4`] — the SRAM of the ATmega32u4
///   microcontroller on the paper's Arduino Leonardo boards (5 V, 2.5 KB),
///   calibrated so a fresh population reproduces the *start* column of the
///   paper's Table I (FHW 62.70 %, WCHD 2.49 %).
/// * [`TechnologyProfile::cmos65nm`] — a 65 nm profile calibrated to the
///   accelerated-aging comparator study (Maes & van der Leest, HOST 2014,
///   the paper's ref \[5\]: WCHD 5.3 % at the start of life).
///
/// The BTI fields parameterize the aging law implemented in the `sramaging`
/// crate: threshold drift `ΔVth ∝ bti_prefactor · τ^bti_exponent` with
/// Arrhenius activation `bti_activation_ev` and exponential voltage
/// acceleration `bti_voltage_gamma` (per volt).
#[derive(Debug, Clone, PartialEq)]
pub struct TechnologyProfile {
    /// Human-readable name, e.g. `"atmega32u4"`.
    pub name: String,
    /// Process node in nanometres (informational).
    pub node_nm: u32,
    /// Nominal supply voltage in volts.
    pub vdd_v: f64,
    /// Nominal operating temperature in degrees Celsius.
    pub temp_c: f64,
    /// Cell mismatch population (mean and sigma in noise-sigma units).
    pub population: PopulationModel,
    /// Fractional noise-sigma increase per kelvin above nominal temperature.
    pub noise_temp_coeff: f64,
    /// Fractional noise-sigma increase per microsecond of supply ramp time
    /// below the nominal ramp (faster ramps are noisier, per the paper's
    /// ref \[17\]).
    pub noise_ramp_coeff: f64,
    /// Nominal supply ramp time in microseconds.
    pub ramp_us: f64,
    /// BTI drift prefactor, in noise-sigma units per `year^bti_exponent` of
    /// effective stress at nominal conditions.
    pub bti_prefactor: f64,
    /// BTI time-power-law exponent `n` (typically 0.1–0.3).
    pub bti_exponent: f64,
    /// BTI Arrhenius activation energy in electronvolts.
    pub bti_activation_ev: f64,
    /// BTI voltage acceleration, per volt of overdrive.
    pub bti_voltage_gamma: f64,
    /// Standard deviation of the *device-level* systematic bias: each
    /// manufactured array shifts its whole mismatch population by a common
    /// `N(0, device_bias_sigma²)` offset (in noise-sigma units), on top of
    /// the per-cell variation. Reproduces the board-to-board Hamming-weight
    /// spread of the paper's Fig. 5 / Table I worst-case rows (devices
    /// ranging ~60–66 % FHW around the 62.7 % mean).
    pub device_bias_sigma: f64,
    /// Ratio of the data-independent drift component to the state-dependent
    /// one (`beta`): per unit of cumulative drift `g(τ)`, a cell's mismatch
    /// moves by `−(2p−1)·g + beta·eta·g` where `eta` is the cell's static
    /// [`drift_bias`](crate::Cell::drift_bias). Calibrated so the two-year
    /// noise-entropy growth matches the paper's +19.3 % (Table I) at the
    /// same time as the WCHD endpoint.
    pub bti_bias_ratio: f64,
}

impl TechnologyProfile {
    /// The ATmega32u4 profile used by the paper's measurement campaign.
    ///
    /// The mismatch population `(mu, sigma)` is the output of
    /// [`calibrate::to_targets`](crate::calibrate::to_targets) for the
    /// paper's start-of-test values (FHW = 62.70 %, WCHD = 2.49 %); the
    /// values are frozen here so that profile construction is cheap and
    /// deterministic, and a unit test re-derives them from the calibrator.
    /// The BTI prefactor is likewise frozen from the aging calibration
    /// (WCHD 2.49 % → 2.97 % over 24 months, Table I).
    ///
    /// # Examples
    ///
    /// ```
    /// let p = sramcell::TechnologyProfile::atmega32u4();
    /// assert_eq!(p.vdd_v, 5.0);
    /// let fhw = p.population.expected_fhw();
    /// assert!((fhw - 0.6270).abs() < 1e-3);
    /// ```
    pub fn atmega32u4() -> Self {
        Self {
            name: "atmega32u4".to_string(),
            node_nm: 350,
            vdd_v: 5.0,
            temp_c: 25.0,
            // Frozen output of `calibrate::to_targets(0.6270, 0.0249)`.
            population: PopulationModel::new(5.558_114, 17.129_842),
            noise_temp_coeff: 0.004,
            noise_ramp_coeff: 0.002,
            ramp_us: 100.0,
            // Frozen output of the sramaging nominal calibration.
            bti_prefactor: 0.275_028,
            bti_exponent: 0.2,
            bti_activation_ev: 0.5,
            bti_voltage_gamma: 2.0,
            device_bias_sigma: 0.6,
            bti_bias_ratio: 2.091_248,
        }
    }

    /// A 65 nm profile matching the accelerated-aging comparator study
    /// (start-of-life WCHD 5.3 % at a balanced FHW of ~49 %).
    ///
    /// # Examples
    ///
    /// ```
    /// let p = sramcell::TechnologyProfile::cmos65nm();
    /// assert!(p.node_nm == 65);
    /// ```
    pub fn cmos65nm() -> Self {
        Self {
            name: "cmos65nm".to_string(),
            node_nm: 65,
            vdd_v: 1.2,
            temp_c: 25.0,
            // Frozen output of `calibrate::to_targets(0.49, 0.053)`.
            population: PopulationModel::new(-0.213_103, 8.441_674),
            noise_temp_coeff: 0.004,
            noise_ramp_coeff: 0.002,
            ramp_us: 50.0,
            bti_prefactor: 0.275_028,
            bti_exponent: 0.2,
            bti_activation_ev: 0.5,
            bti_voltage_gamma: 2.0,
            device_bias_sigma: 0.3,
            bti_bias_ratio: 2.091_248,
        }
    }

    /// BTI stress acceleration factor of environment `(temp_c, vdd_v)`
    /// relative to this profile's nominal conditions.
    ///
    /// `AF = exp(Ea/k · (1/T_nom − 1/T)) · exp(gamma · (V − V_nom))`,
    /// with temperatures in kelvin. At nominal conditions the factor is 1.
    ///
    /// # Examples
    ///
    /// ```
    /// let p = sramcell::TechnologyProfile::atmega32u4();
    /// assert!((p.acceleration_factor(p.temp_c, p.vdd_v) - 1.0).abs() < 1e-12);
    /// assert!(p.acceleration_factor(85.0, p.vdd_v * 1.1) > 10.0);
    /// ```
    pub fn acceleration_factor(&self, temp_c: f64, vdd_v: f64) -> f64 {
        const BOLTZMANN_EV_PER_K: f64 = 8.617_333_262e-5;
        let t_nom = self.temp_c + 273.15;
        let t = temp_c + 273.15;
        let arrhenius =
            (self.bti_activation_ev / BOLTZMANN_EV_PER_K * (1.0 / t_nom - 1.0 / t)).exp();
        let voltage = (self.bti_voltage_gamma * (vdd_v - self.vdd_v)).exp();
        arrhenius * voltage
    }
}

impl fmt::Display for TechnologyProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} nm, {} V, {} °C)",
            self.name, self.node_nm, self.vdd_v, self.temp_c
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atmega_profile_reproduces_paper_start_metrics() {
        let p = TechnologyProfile::atmega32u4();
        let pop = &p.population;
        assert!((pop.expected_fhw() - 0.6270).abs() < 5e-4, "fhw");
        assert!((pop.expected_wchd() - 0.0249).abs() < 5e-5, "wchd");
        // These two fall out of the model rather than being fitted; the
        // paper's measured values are 3.05 % and 85.9 %.
        let noise = pop.expected_noise_entropy();
        assert!((0.025..=0.037).contains(&noise), "noise entropy {noise}");
        let stable = pop.expected_stable_ratio(1000);
        assert!((0.83..=0.91).contains(&stable), "stable ratio {stable}");
        // BCHD follows from FHW alone: 2·f·(1−f) ≈ 46.8 %.
        assert!((pop.expected_bchd() - 0.4677).abs() < 2e-3);
    }

    #[test]
    fn cmos65_profile_matches_host14_start() {
        let p = TechnologyProfile::cmos65nm();
        assert!((p.population.expected_fhw() - 0.49).abs() < 5e-3);
        assert!((p.population.expected_wchd() - 0.053).abs() < 5e-4);
    }

    #[test]
    fn acceleration_factor_is_monotone_in_temperature_and_voltage() {
        let p = TechnologyProfile::atmega32u4();
        let base = p.acceleration_factor(p.temp_c, p.vdd_v);
        assert!((base - 1.0).abs() < 1e-12);
        let hot = p.acceleration_factor(85.0, p.vdd_v);
        let hot_hv = p.acceleration_factor(85.0, p.vdd_v + 0.5);
        assert!(hot > 1.0);
        assert!(hot_hv > hot);
        assert!(p.acceleration_factor(0.0, p.vdd_v) < 1.0);
    }

    #[test]
    fn display_mentions_name() {
        assert!(TechnologyProfile::atmega32u4()
            .to_string()
            .contains("atmega32u4"));
    }
}
