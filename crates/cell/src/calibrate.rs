//! Fits the mismatch population to measured PUF metrics.
//!
//! The paper reports its start-of-test metrics (Table I, "Start" column);
//! this module inverts the analytic expectations of [`PopulationModel`] to
//! recover the `(mu, sigma)` that reproduce them:
//!
//! 1. For any `sigma`, the bias `mu = sqrt(1 + sigma^2) · Phi^{-1}(FHW)`
//!    makes the expected fractional Hamming weight exact (closed form).
//! 2. Along that constraint, the expected within-class Hamming distance
//!    `E[2p(1-p)]` is strictly decreasing in `sigma` (a wider population has
//!    fewer near-balanced cells), so a bisection on `sigma` completes the
//!    fit.
//!
//! The remaining Table I metrics (noise entropy, stable-cell ratio, BCHD)
//! are *predictions* of the fitted model, not fitting targets — the unit
//! tests confirm they land near the paper's measurements, which is a
//! non-trivial validation of the single-Gaussian hidden-variable model.

use crate::PopulationModel;
use pufstats::normal::phi_inv;
use pufstats::solve::{bisect, SolveError};
use std::error::Error;
use std::fmt;

/// Error returned by [`to_targets`] for unsatisfiable targets.
#[derive(Debug, Clone, PartialEq)]
pub enum CalibrateError {
    /// A target was outside its valid open interval.
    InvalidTarget(String),
    /// The inner root search failed.
    Solve(SolveError),
}

impl fmt::Display for CalibrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CalibrateError::InvalidTarget(msg) => write!(f, "invalid calibration target: {msg}"),
            CalibrateError::Solve(e) => write!(f, "calibration solve failed: {e}"),
        }
    }
}

impl Error for CalibrateError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CalibrateError::Solve(e) => Some(e),
            CalibrateError::InvalidTarget(_) => None,
        }
    }
}

impl From<SolveError> for CalibrateError {
    fn from(e: SolveError) -> Self {
        CalibrateError::Solve(e)
    }
}

/// Bias `mu` that gives expected FHW `fhw` at population width `sigma`.
pub fn mu_for_fhw(fhw: f64, sigma: f64) -> f64 {
    (1.0 + sigma * sigma).sqrt() * phi_inv(fhw)
}

/// Fits a [`PopulationModel`] to a target fractional Hamming weight and
/// within-class Hamming distance.
///
/// # Errors
///
/// Returns [`CalibrateError::InvalidTarget`] unless `0 < fhw < 1` and
/// `0 < wchd < min(0.5, achievable at this fhw)`, or
/// [`CalibrateError::Solve`] if the bisection cannot bracket the target
/// (WCHD too large for the requested bias).
///
/// # Examples
///
/// ```
/// use sramcell::calibrate::to_targets;
///
/// // The paper's start-of-test metrics.
/// let pop = to_targets(0.6270, 0.0249)?;
/// assert!((pop.expected_fhw() - 0.6270).abs() < 1e-6);
/// assert!((pop.expected_wchd() - 0.0249).abs() < 1e-6);
/// # Ok::<(), sramcell::calibrate::CalibrateError>(())
/// ```
pub fn to_targets(fhw: f64, wchd: f64) -> Result<PopulationModel, CalibrateError> {
    if !(fhw > 0.0 && fhw < 1.0) {
        return Err(CalibrateError::InvalidTarget(format!(
            "fhw must be in (0, 1), got {fhw}"
        )));
    }
    if !(wchd > 0.0 && wchd < 0.5) {
        return Err(CalibrateError::InvalidTarget(format!(
            "wchd must be in (0, 0.5), got {wchd}"
        )));
    }
    let objective = |sigma: f64| {
        let pop = PopulationModel::new(mu_for_fhw(fhw, sigma), sigma);
        pop.expected_wchd() - wchd
    };
    // sigma → 0 gives the maximal WCHD (all cells at p = fhw); large sigma
    // drives WCHD to zero. Bracket accordingly.
    let sigma = bisect(objective, 1e-6, 1e4, 1e-10, 400)?;
    Ok(PopulationModel::new(mu_for_fhw(fhw, sigma), sigma))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_start_targets_are_reproduced() {
        let pop = to_targets(0.6270, 0.0249).unwrap();
        assert!((pop.expected_fhw() - 0.6270).abs() < 1e-7);
        assert!((pop.expected_wchd() - 0.0249).abs() < 1e-7);
        // Model predictions for the non-fitted metrics, vs paper
        // measurements 3.05 % (noise entropy) and 85.9 % (stable cells).
        let noise = pop.expected_noise_entropy();
        assert!((noise - 0.0305).abs() < 0.004, "noise entropy {noise}");
        let stable = pop.expected_stable_ratio(1000);
        assert!((stable - 0.859).abs() < 0.04, "stable {stable}");
        let bchd = pop.expected_bchd();
        assert!((bchd - 0.4679).abs() < 0.002, "bchd {bchd}");
    }

    #[test]
    fn host14_targets_are_reproduced() {
        let pop = to_targets(0.49, 0.053).unwrap();
        assert!((pop.expected_fhw() - 0.49).abs() < 1e-7);
        assert!((pop.expected_wchd() - 0.053).abs() < 1e-7);
    }

    #[test]
    fn unbiased_low_noise_population() {
        let pop = to_targets(0.5, 0.02).unwrap();
        assert!(pop.mu.abs() < 1e-6);
        assert!(pop.sigma > 5.0);
    }

    #[test]
    fn invalid_targets_are_rejected() {
        assert!(matches!(
            to_targets(0.0, 0.02),
            Err(CalibrateError::InvalidTarget(_))
        ));
        assert!(matches!(
            to_targets(0.6, 0.5),
            Err(CalibrateError::InvalidTarget(_))
        ));
        assert!(matches!(
            to_targets(0.6, -0.1),
            Err(CalibrateError::InvalidTarget(_))
        ));
    }

    #[test]
    fn unreachable_wchd_reports_solve_error() {
        // At fhw = 0.99 the maximum achievable WCHD (sigma → 0) is
        // 2·0.99·0.01 ≈ 0.0198 < 0.4.
        let err = to_targets(0.99, 0.4).unwrap_err();
        assert!(matches!(err, CalibrateError::Solve(_)));
        assert!(err.source().is_some());
    }

    #[test]
    fn mu_constraint_holds_along_the_curve() {
        for sigma in [0.5, 2.0, 10.0, 30.0] {
            let pop = PopulationModel::new(mu_for_fhw(0.627, sigma), sigma);
            assert!((pop.expected_fhw() - 0.627).abs() < 1e-9, "sigma={sigma}");
        }
    }
}
