//! A single 6T SRAM cell.

use pufstats::normal::{phi, sample_standard};
use rand::Rng;

/// One 6T SRAM cell, reduced to its static mismatch.
///
/// The mismatch is the effective threshold-voltage imbalance between the
/// cell's cross-coupled inverters in units of the power-up noise sigma; its
/// sign selects the preferred power-up state and its magnitude the strength
/// of that preference. Aging (`sramaging`) acts by shifting this value.
///
/// # Examples
///
/// ```
/// use sramcell::Cell;
///
/// let strongly_one = Cell::new(6.0);
/// assert!(strongly_one.one_probability(1.0) > 0.999_999);
/// let balanced = Cell::new(0.0);
/// assert!((balanced.one_probability(1.0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Cell {
    mismatch: f64,
    drift_bias: f64,
}

impl Cell {
    /// Creates a cell with the given static mismatch (noise-sigma units)
    /// and no data-independent drift bias.
    ///
    /// # Panics
    ///
    /// Panics if `mismatch` is not finite.
    pub fn new(mismatch: f64) -> Self {
        Self::with_drift_bias(mismatch, 0.0)
    }

    /// Creates a cell with an explicit *drift bias* — the standardized
    /// strength and direction of the cell's data-independent aging component
    /// (PBTI on the NMOS pair, process-dependent BTI sensitivity). Sampled
    /// `N(0, 1)` at manufacturing by
    /// [`SramArray::generate`](crate::SramArray::generate); the aging law
    /// scales it by the technology's bias ratio.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not finite.
    pub fn with_drift_bias(mismatch: f64, drift_bias: f64) -> Self {
        assert!(mismatch.is_finite(), "cell mismatch must be finite");
        assert!(drift_bias.is_finite(), "cell drift bias must be finite");
        Self {
            mismatch,
            drift_bias,
        }
    }

    /// The static mismatch in noise-sigma units.
    pub fn mismatch(&self) -> f64 {
        self.mismatch
    }

    /// The standardized data-independent drift bias.
    pub fn drift_bias(&self) -> f64 {
        self.drift_bias
    }

    /// Shifts the mismatch by `delta` (used by the aging model).
    ///
    /// # Panics
    ///
    /// Panics if the resulting mismatch is not finite.
    pub fn shift(&mut self, delta: f64) {
        let next = self.mismatch + delta;
        assert!(
            next.is_finite(),
            "cell mismatch drifted to non-finite value"
        );
        self.mismatch = next;
    }

    /// Probability of powering up to `1` when the effective noise sigma is
    /// `noise_sigma` (1.0 at nominal conditions): `Phi(m / noise_sigma)`.
    ///
    /// # Panics
    ///
    /// Panics if `noise_sigma <= 0`.
    pub fn one_probability(&self, noise_sigma: f64) -> f64 {
        assert!(noise_sigma > 0.0, "noise sigma must be positive");
        phi(self.mismatch / noise_sigma)
    }

    /// Simulates one power-up: samples the noise and resolves the cell.
    ///
    /// # Panics
    ///
    /// Panics if `noise_sigma <= 0`.
    pub fn power_up<R: Rng + ?Sized>(&self, noise_sigma: f64, rng: &mut R) -> bool {
        assert!(noise_sigma > 0.0, "noise sigma must be positive");
        self.mismatch + noise_sigma * sample_standard(rng) > 0.0
    }

    /// The cell's preferred power-up state (`true` = 1).
    pub fn preferred_state(&self) -> bool {
        self.mismatch > 0.0
    }

    /// Whether the cell is *fully skewed* for practical purposes: the
    /// probability of ever observing the non-preferred state within `reads`
    /// power-ups is below `tolerance`.
    pub fn is_effectively_stable(&self, noise_sigma: f64, reads: u32, tolerance: f64) -> bool {
        let p = self.one_probability(noise_sigma);
        let p_major = p.max(1.0 - p);
        1.0 - p_major.powi(reads as i32) < tolerance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn one_probability_is_monotone_in_mismatch() {
        let probs: Vec<f64> = [-3.0, -1.0, 0.0, 1.0, 3.0]
            .iter()
            .map(|&m| Cell::new(m).one_probability(1.0))
            .collect();
        for w in probs.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn higher_noise_flattens_probability() {
        let cell = Cell::new(2.0);
        let quiet = cell.one_probability(0.5);
        let noisy = cell.one_probability(4.0);
        assert!(quiet > noisy);
        assert!(noisy > 0.5);
    }

    #[test]
    fn power_up_frequency_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let cell = Cell::new(0.8);
        let n = 100_000;
        let ones = (0..n).filter(|_| cell.power_up(1.0, &mut rng)).count();
        let p_hat = ones as f64 / n as f64;
        let p = cell.one_probability(1.0);
        assert!((p_hat - p).abs() < 0.01, "p_hat={p_hat} vs p={p}");
    }

    #[test]
    fn shift_moves_mismatch() {
        let mut cell = Cell::new(1.0);
        cell.shift(-2.5);
        assert!((cell.mismatch() + 1.5).abs() < 1e-12);
        assert!(!cell.preferred_state());
    }

    #[test]
    fn stability_classification() {
        assert!(Cell::new(6.0).is_effectively_stable(1.0, 1000, 1e-3));
        assert!(!Cell::new(1.0).is_effectively_stable(1.0, 1000, 1e-3));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_noise_sigma_rejected() {
        Cell::new(0.0).one_probability(0.0);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_mismatch_rejected() {
        Cell::new(f64::NAN);
    }
}
