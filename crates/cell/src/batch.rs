//! Batched power-up kernel: the block-sampled, word-packed fast path for
//! simulating read-outs.
//!
//! [`SramArray::power_up`] is the reference implementation: per cell it draws
//! one Gaussian via rejection sampling (discarding the second Box–Muller
//! variate), recomputes `mismatch + noise_sigma · z > 0`, and pushes the bit
//! through a `BitVec` collect. [`PowerUpKernel`] restructures the same model
//! for throughput:
//!
//! * the decision is rewritten as `z > −mismatch / noise_sigma`, and those
//!   per-cell **thresholds** are precomputed once per `(aging epoch,
//!   noise sigma)` and reused across reads — the aging simulator bumps the
//!   array's [`epoch`](SramArray::epoch) whenever it touches cells, which
//!   invalidates the cache;
//! * noise is sampled in **blocks** through
//!   [`pufstats::normal::fill_standard`], which keeps both variates of every
//!   Box–Muller acceptance;
//! * bits are packed 64 at a time into `u64` words and handed to
//!   [`BitVec::from_words`], skipping per-bit pushes.
//!
//! The kernel produces the same per-cell one-probabilities as the scalar
//! path (`Phi(mismatch / noise_sigma)`), but not the same bitstream: it
//! consumes the RNG in a different order. The workspace's reproducibility
//! contract is on metrics, not bitstreams (see DESIGN.md).
//!
//! A kernel caches thresholds for **one** logical device; give each board
//! its own kernel rather than sharing one across devices.

use crate::{Environment, SramArray};
use pufbits::BitVec;
use pufstats::normal::fill_standard;
use rand::Rng;

/// Noise samples drawn per block: multiple of 64 so packing stays
/// word-aligned, small enough (32 KiB) to live in L1/L2.
const BLOCK_BITS: usize = 4096;

/// Reusable batched power-up state: cached per-cell thresholds plus a noise
/// scratch block.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use sramcell::{Environment, PowerUpKernel, SramArray, TechnologyProfile};
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let profile = TechnologyProfile::atmega32u4();
/// let sram = SramArray::generate(&profile, 1024, &mut rng);
/// let env = Environment::nominal(&profile);
/// let mut kernel = PowerUpKernel::new();
/// let a = kernel.power_up(&sram, &env, &mut rng);
/// let b = kernel.power_up(&sram, &env, &mut rng);
/// assert_eq!(a.len(), 1024);
/// assert!(a.fractional_hamming_distance(&b) < 0.10);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PowerUpKernel {
    thresholds: Vec<f64>,
    cache_key: Option<(u64, u64)>,
    noise: Vec<f64>,
}

impl PowerUpKernel {
    /// Creates a kernel with an empty threshold cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulates one full read-out of `sram` under `env`.
    pub fn power_up<R: Rng + ?Sized>(
        &mut self,
        sram: &SramArray,
        env: &Environment,
        rng: &mut R,
    ) -> BitVec {
        self.power_up_prefix(sram, env, sram.len(), rng)
    }

    /// Simulates a read-out of the first `bits` cells of `sram` under `env`
    /// — the testbed's read window — without sampling noise for cells past
    /// the window.
    ///
    /// # Panics
    ///
    /// Panics if `bits` exceeds the array length.
    pub fn power_up_prefix<R: Rng + ?Sized>(
        &mut self,
        sram: &SramArray,
        env: &Environment,
        bits: usize,
        rng: &mut R,
    ) -> BitVec {
        assert!(
            bits <= sram.len(),
            "read window of {bits} bits exceeds the {}-cell array",
            sram.len()
        );
        let noise_sigma = env.noise_sigma(sram.profile());
        self.refresh(sram, noise_sigma);

        let thresholds = &self.thresholds[..bits];
        let noise = &mut self.noise;
        let mut words = vec![0u64; bits.div_ceil(64)];
        let mut next_word = 0;
        for block in thresholds.chunks(BLOCK_BITS) {
            let z = &mut noise[..block.len()];
            fill_standard(rng, z);
            for (ts, zs) in block.chunks(64).zip(z.chunks(64)) {
                let mut word = 0u64;
                for (bit, (&t, &z)) in ts.iter().zip(zs).enumerate() {
                    word |= u64::from(z > t) << bit;
                }
                words[next_word] = word;
                next_word += 1;
            }
        }
        BitVec::from_words(words, bits)
    }

    /// Recomputes thresholds if the cache does not match this
    /// `(epoch, noise sigma)` — e.g. after aging or an environment change.
    fn refresh(&mut self, sram: &SramArray, noise_sigma: f64) {
        let key = (sram.epoch(), noise_sigma.to_bits());
        if self.cache_key == Some(key) && self.thresholds.len() == sram.len() {
            return;
        }
        self.thresholds.clear();
        self.thresholds
            .extend(sram.cells().iter().map(|c| -c.mismatch() / noise_sigma));
        self.noise.resize(BLOCK_BITS.min(sram.len()), 0.0);
        self.cache_key = Some(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TechnologyProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture(bits: usize, seed: u64) -> (SramArray, Environment) {
        let mut rng = StdRng::seed_from_u64(seed);
        let profile = TechnologyProfile::atmega32u4();
        let sram = SramArray::generate(&profile, bits, &mut rng);
        let env = Environment::nominal(&profile);
        (sram, env)
    }

    #[test]
    fn prefix_matches_full_read_statistics() {
        let (sram, env) = fixture(5000, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let mut kernel = PowerUpKernel::new();
        let full = kernel.power_up(&sram, &env, &mut rng);
        let prefix = kernel.power_up_prefix(&sram, &env, 1234, &mut rng);
        assert_eq!(full.len(), 5000);
        assert_eq!(prefix.len(), 1234);
        // Same device, same statistics: the two windows disagree only at
        // noisy cells.
        let fhd = prefix.fractional_hamming_distance(&full.prefix(1234));
        assert!(fhd < 0.10, "fhd {fhd}");
    }

    #[test]
    fn cache_survives_reads_and_is_invalidated_by_aging() {
        let (mut sram, env) = fixture(1024, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut kernel = PowerUpKernel::new();
        kernel.power_up(&sram, &env, &mut rng);
        let key = kernel.cache_key;
        kernel.power_up(&sram, &env, &mut rng);
        assert_eq!(kernel.cache_key, key, "reads must not rebuild thresholds");

        // Flip every cell's mismatch through the mutable path: the epoch
        // bump must force a rebuild that reflects the new values.
        for cell in sram.cells_mut() {
            *cell = crate::Cell::new(-cell.mismatch());
        }
        let before: Vec<f64> = kernel.thresholds.clone();
        kernel.power_up(&sram, &env, &mut rng);
        assert_ne!(kernel.cache_key, key);
        assert!(kernel
            .thresholds
            .iter()
            .zip(&before)
            .all(|(now, old)| (now + old).abs() < 1e-12));
    }

    #[test]
    fn environment_change_rebuilds_thresholds() {
        let (sram, env) = fixture(512, 5);
        let hot = Environment {
            temp_c: 105.0,
            ..env
        };
        let mut rng = StdRng::seed_from_u64(6);
        let mut kernel = PowerUpKernel::new();
        kernel.power_up(&sram, &env, &mut rng);
        let nominal_key = kernel.cache_key;
        kernel.power_up(&sram, &hot, &mut rng);
        assert_ne!(kernel.cache_key, nominal_key);
    }

    #[test]
    fn odd_lengths_pack_cleanly() {
        for bits in [1, 63, 64, 65, 4095, 4096, 4097] {
            let (sram, env) = fixture(bits, 7);
            let mut rng = StdRng::seed_from_u64(8);
            let mut kernel = PowerUpKernel::new();
            let read = kernel.power_up(&sram, &env, &mut rng);
            assert_eq!(read.len(), bits);
            // Tail invariant: bits past `len` stay zero.
            let rebuilt = BitVec::from_words(read.as_words().to_vec(), bits);
            assert_eq!(rebuilt, read);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_window_is_rejected() {
        let (sram, env) = fixture(64, 9);
        let mut kernel = PowerUpKernel::new();
        let mut rng = StdRng::seed_from_u64(10);
        kernel.power_up_prefix(&sram, &env, 65, &mut rng);
    }
}
