//! Satellite: the batched kernel is statistically equivalent to the scalar
//! model — empirical per-cell one-frequencies match
//! `SramArray::one_probabilities` within the same bound the scalar
//! `power_up_frequency_matches_probability` unit test uses (100 000 reads,
//! |p̂ − p| < 0.01).

use pufbits::OnesCounter;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sramcell::{Environment, PowerUpKernel, SramArray, TechnologyProfile};

#[test]
fn batched_kernel_one_frequencies_match_one_probabilities() {
    let mut rng = StdRng::seed_from_u64(20);
    let profile = TechnologyProfile::atmega32u4();
    let cells = 96;
    let sram = SramArray::generate(&profile, cells, &mut rng);
    let env = Environment::nominal(&profile);

    let reads = 100_000u32;
    let mut kernel = PowerUpKernel::new();
    let mut counter = OnesCounter::new(cells);
    for _ in 0..reads {
        counter
            .add(&kernel.power_up(&sram, &env, &mut rng))
            .unwrap();
    }

    let probabilities = sram.one_probabilities(&env);
    for (i, &p) in probabilities.iter().enumerate() {
        let p_hat = counter.count(i).unwrap() as f64 / f64::from(reads);
        assert!((p_hat - p).abs() < 0.01, "cell {i}: p_hat={p_hat} vs p={p}");
    }
}

#[test]
fn batched_kernel_tracks_scalar_path_after_aging() {
    // The threshold cache must follow mismatch changes: compare batched
    // frequencies against the *aged* probabilities, not the fresh ones.
    let mut rng = StdRng::seed_from_u64(21);
    let profile = TechnologyProfile::atmega32u4();
    let cells = 64;
    let mut sram = SramArray::generate(&profile, cells, &mut rng);
    let env = Environment::nominal(&profile);

    let mut kernel = PowerUpKernel::new();
    kernel.power_up(&sram, &env, &mut rng);

    for cell in sram.cells_mut() {
        cell.shift(-0.4 * cell.mismatch().signum());
    }

    let reads = 100_000u32;
    let mut counter = OnesCounter::new(cells);
    for _ in 0..reads {
        counter
            .add(&kernel.power_up(&sram, &env, &mut rng))
            .unwrap();
    }
    let probabilities = sram.one_probabilities(&env);
    for (i, &p) in probabilities.iter().enumerate() {
        let p_hat = counter.count(i).unwrap() as f64 / f64::from(reads);
        assert!(
            (p_hat - p).abs() < 0.01,
            "cell {i}: p_hat={p_hat} vs aged p={p}"
        );
    }
}
