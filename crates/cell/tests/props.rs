//! Property-based invariants of the cell model and its calibration.

use proptest::prelude::*;
use sramcell::{calibrate, Cell, Environment, PopulationModel, SramArray, TechnologyProfile};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn one_probability_is_monotone_in_mismatch(m1 in -20.0f64..20.0, m2 in -20.0f64..20.0, noise in 0.1f64..5.0) {
        let (lo, hi) = if m1 < m2 { (m1, m2) } else { (m2, m1) };
        prop_assert!(Cell::new(lo).one_probability(noise) <= Cell::new(hi).one_probability(noise));
    }

    #[test]
    fn noise_flattens_probability_toward_half(m in -10.0f64..10.0, n1 in 0.1f64..2.0, n2 in 2.0f64..10.0) {
        let p_quiet = Cell::new(m).one_probability(n1);
        let p_noisy = Cell::new(m).one_probability(n2);
        prop_assert!((p_noisy - 0.5).abs() <= (p_quiet - 0.5).abs() + 1e-12);
    }

    #[test]
    fn calibration_inverts_the_analytic_model(fhw in 0.35f64..0.75, wchd_frac in 0.05f64..0.6) {
        // A reachable WCHD target: strictly below the sigma→0 ceiling.
        let ceiling = 2.0 * fhw * (1.0 - fhw);
        let wchd = ceiling * wchd_frac;
        let pop = calibrate::to_targets(fhw, wchd).unwrap();
        prop_assert!((pop.expected_fhw() - fhw).abs() < 1e-6, "fhw {}", pop.expected_fhw());
        prop_assert!((pop.expected_wchd() - wchd).abs() < 1e-6, "wchd {}", pop.expected_wchd());
    }

    #[test]
    fn population_metric_relationships(mu in -5.0f64..5.0, sigma in 0.5f64..30.0) {
        let pop = PopulationModel::new(mu, sigma);
        // Noise entropy dominates WCHD/2 and stays below Shannon's bound of 1.
        let wchd = pop.expected_wchd();
        let noise = pop.expected_noise_entropy();
        prop_assert!(noise >= wchd / 2.0 - 1e-9, "noise {noise} vs wchd {wchd}");
        prop_assert!(noise <= 1.0);
        // Stable ratio decreases as the window grows.
        prop_assert!(pop.expected_stable_ratio(1000) <= pop.expected_stable_ratio(10) + 1e-12);
        // BCHD ≤ 0.5 always.
        prop_assert!(pop.expected_bchd() <= 0.5 + 1e-12);
    }

    #[test]
    fn generated_arrays_track_population_fhw(seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let profile = TechnologyProfile::atmega32u4();
        let sram = SramArray::generate(&profile, 16_384, &mut rng);
        let env = Environment::nominal(&profile);
        let expected = profile.population.expected_fhw();
        let got = sram.expected_fhw(&env);
        // Per-cell sampling noise is tiny at 16 384 cells; the dominant
        // spread is the device-level bias (sigma 0.6 in mu units ≈ 0.013
        // in FHW units) — allow a 4-sigma band.
        prop_assert!((got - expected).abs() < 0.055, "{got} vs {expected}");
    }
}
