//! Checkpoint codec throughput: encoding and decoding a full
//! `pufchk/1` campaign state, plus the atomic file round trip — the cost
//! of a checkpoint is what bounds how often `--checkpoint-every` can
//! reasonably fire. State size is printed once: it scales with
//! `boards × sram_bits`, not with how many records the campaign has
//! already emitted.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pufbench::Scale;
use puftestbed::store::checkpoint;
use puftestbed::Campaign;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let scale = Scale::Smoke;
    let config = scale.campaign_config();
    let mut campaign = Campaign::new(config, 31);
    // Age the state past the first windows so drift fields are non-trivial.
    campaign.run_in_memory();
    let state = campaign.export_state();
    let encoded = checkpoint::encode(&state);
    println!(
        "state: {} boards × {} cells → {} bytes encoded",
        state.boards.len(),
        state
            .boards
            .first()
            .map_or(0, |b| b.board.array.mismatch.len()),
        encoded.len()
    );

    let mut group = c.benchmark_group("store_checkpoint");
    group.sample_size(20);
    group.throughput(Throughput::Bytes(encoded.len() as u64));

    group.bench_function("encode", |b| {
        b.iter(|| black_box(checkpoint::encode(black_box(&state))));
    });

    group.bench_function("decode", |b| {
        b.iter(|| black_box(checkpoint::decode(black_box(&encoded)).unwrap()));
    });

    let path = std::env::temp_dir().join(format!("pufchk_bench_{}", std::process::id()));
    group.bench_function("write_file_atomic", |b| {
        b.iter(|| black_box(checkpoint::write_file(&path, &state).unwrap()));
    });

    group.bench_function("read_file", |b| {
        b.iter(|| black_box(checkpoint::read_file(&path).unwrap()));
    });
    std::fs::remove_file(&path).ok();

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
