//! The §IV-D/§V nominal-vs-accelerated comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use sramaging::accelerated::{accelerated_study, comparison, nominal_study};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("accel");
    group.sample_size(10);

    group.bench_function("nominal_study_24mo", |b| {
        b.iter(|| black_box(nominal_study(24)));
    });

    group.bench_function("accelerated_study_24mo", |b| {
        b.iter(|| black_box(accelerated_study(24)));
    });

    group.bench_function("full_comparison_24mo", |b| {
        b.iter(|| black_box(comparison(24)));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
