//! Fig. 3 — power-cycle waveform generation and the Algorithm-1 schedule.

use criterion::{criterion_group, criterion_main, Criterion};
use puftestbed::schedule::{two_layer_schedule, HandshakeMachine};
use puftestbed::PowerWaveform;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3");

    group.bench_function("waveform_trace_1min", |b| {
        let w = PowerWaveform::paper_layer(0);
        b.iter(|| black_box(w.trace(0.0, 60.0, 0.01)));
    });

    group.bench_function("two_layer_schedule_1hour", |b| {
        // One hour of 5.4 s cycles ≈ 667 cycles × 2 layers.
        b.iter(|| black_box(two_layer_schedule(667)));
    });

    group.bench_function("handshake_machine_10k_steps", |b| {
        b.iter(|| {
            let mut hs = HandshakeMachine::new();
            for _ in 0..10_000 {
                black_box(hs.step());
            }
            hs
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
