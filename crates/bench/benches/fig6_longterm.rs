//! Fig. 6 — the 24-month development curves, analytic and Monte-Carlo.

use criterion::{criterion_group, criterion_main, Criterion};
use pufbench::{run_assessment, Scale};
use sramaging::{analytic_series, BtiModel};
use sramcell::TechnologyProfile;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);

    group.bench_function("analytic_series_24_months", |b| {
        let profile = TechnologyProfile::atmega32u4();
        let bti = BtiModel::from_profile(&profile);
        b.iter(|| {
            black_box(analytic_series(
                &profile.population,
                bti,
                3.8 / 5.4,
                24,
                1000,
            ))
        });
    });

    group.bench_function("campaign_assessment_smoke", |b| {
        b.iter(|| black_box(run_assessment(Scale::Smoke, 6)));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
