//! TRNG throughput — including the paper's aging dividend (§IV-D2): an
//! aged device needs fewer power-ups per output byte.

use criterion::{criterion_group, criterion_main, Criterion};
use puftrng::{SramTrng, TrngConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sramaging::{AgingSimulator, StressConditions};
use sramcell::{SramArray, TechnologyProfile};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("trng");
    group.sample_size(20);

    let profile = TechnologyProfile::atmega32u4();
    let mut rng = StdRng::seed_from_u64(9);
    let fresh = SramArray::generate(&profile, 8192, &mut rng);
    let mut aged = fresh.clone();
    let mut sim = AgingSimulator::new(&profile, StressConditions::paper_campaign(&profile));
    sim.advance(&mut aged, 2.0, 24);

    group.bench_function("characterize_8192b_100_reads", |b| {
        b.iter(|| {
            black_box(
                SramTrng::characterize(fresh.clone(), &TrngConfig::default(), &mut rng).unwrap(),
            )
        });
    });

    group.bench_function("generate_64B_fresh_device", |b| {
        let mut trng =
            SramTrng::characterize(fresh.clone(), &TrngConfig::default(), &mut rng).unwrap();
        b.iter(|| black_box(trng.generate(64, &mut rng).unwrap()));
    });

    group.bench_function("generate_64B_aged_device", |b| {
        let mut trng =
            SramTrng::characterize(aged.clone(), &TrngConfig::default(), &mut rng).unwrap();
        b.iter(|| black_box(trng.generate(64, &mut rng).unwrap()));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
