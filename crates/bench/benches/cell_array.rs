//! Substrate throughput: cell power-up, one-count accumulation, Hamming
//! kernels, and the aging step — the inner loops of the whole campaign.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pufbits::{BitVec, OnesCounter};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sramaging::{AgingSimulator, StressConditions};
use sramcell::{Environment, PowerUpKernel, SramArray, TechnologyProfile};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let profile = TechnologyProfile::atmega32u4();
    let env = Environment::nominal(&profile);
    let mut rng = StdRng::seed_from_u64(10);
    let sram = SramArray::generate(&profile, 8192, &mut rng);

    let mut group = c.benchmark_group("substrate");
    group.throughput(Throughput::Elements(8192));

    group.bench_function("power_up_8192_cells", |b| {
        b.iter(|| black_box(sram.power_up(&env, &mut rng)));
    });

    // The campaign engine's fast path: cached thresholds + block noise +
    // word packing. Compare against `power_up_8192_cells` (the scalar path).
    group.bench_function("power_up_batched_8192_cells", |b| {
        let mut kernel = PowerUpKernel::new();
        kernel.power_up(&sram, &env, &mut rng);
        b.iter(|| black_box(kernel.power_up(&sram, &env, &mut rng)));
    });

    // Cold cache: thresholds rebuilt every call, as after an aging step.
    group.bench_function("power_up_batched_cold_8192_cells", |b| {
        b.iter(|| {
            let mut kernel = PowerUpKernel::new();
            black_box(kernel.power_up(&sram, &env, &mut rng))
        });
    });

    group.bench_function("ones_counter_add_8192", |b| {
        let readout = sram.power_up(&env, &mut rng);
        let mut counter = OnesCounter::new(8192);
        b.iter(|| counter.add(black_box(&readout)).unwrap());
    });

    group.bench_function("hamming_distance_8192", |b| {
        let x = sram.power_up(&env, &mut rng);
        let y = sram.power_up(&env, &mut rng);
        b.iter(|| black_box(x.hamming_distance(&y)));
    });

    group.bench_function("bitvec_xor_8192", |b| {
        let x = sram.power_up(&env, &mut rng);
        let y = sram.power_up(&env, &mut rng);
        b.iter(|| black_box(&x ^ &y));
    });

    group.bench_function("aging_step_one_month_8192_cells", |b| {
        b.iter_batched(
            || {
                (
                    sram.clone(),
                    AgingSimulator::new(&profile, StressConditions::paper_campaign(&profile)),
                )
            },
            |(mut array, mut sim)| {
                sim.advance(&mut array, 1.0 / 12.0, 1);
                black_box(array)
            },
            criterion::BatchSize::SmallInput,
        );
    });

    group.bench_function("bitvec_roundtrip_bytes_8192", |b| {
        let x = sram.power_up(&env, &mut rng);
        b.iter(|| black_box(BitVec::from_bytes(&x.to_bytes())));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
