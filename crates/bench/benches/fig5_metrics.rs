//! Fig. 5 — WCHD / BCHD / FHW histograms over device windows.

use criterion::{criterion_group, criterion_main, Criterion};
use pufassess::metrics::InitialQuality;
use pufbits::BitMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sramcell::{Environment, SramArray, TechnologyProfile};
use std::hint::black_box;

fn device_windows(devices: usize, reads: usize, bits: usize) -> Vec<BitMatrix> {
    let profile = TechnologyProfile::atmega32u4();
    let env = Environment::nominal(&profile);
    let mut rng = StdRng::seed_from_u64(5);
    (0..devices)
        .map(|_| {
            let sram = SramArray::generate(&profile, bits, &mut rng);
            (0..reads).map(|_| sram.power_up(&env, &mut rng)).collect()
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(20);

    let windows = device_windows(16, 50, 8192);
    group.bench_function("initial_quality_16dev_50reads_8192b", |b| {
        b.iter(|| black_box(InitialQuality::evaluate(&windows)));
    });

    let small = device_windows(8, 20, 2048);
    group.bench_function("initial_quality_8dev_20reads_2048b", |b| {
        b.iter(|| black_box(InitialQuality::evaluate(&small)));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
