//! Key-generation throughput: enrollment, reconstruction, and the
//! underlying codecs.

use criterion::{criterion_group, criterion_main, Criterion};
use pufbits::BitVec;
use pufkeygen::ecc::{BlockCode, Concatenated, Golay, PolarCode, Repetition};
use pufkeygen::{sha256, KeyGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sramcell::{Environment, SramArray, TechnologyProfile};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("keygen");

    let profile = TechnologyProfile::atmega32u4();
    let env = Environment::nominal(&profile);
    let mut rng = StdRng::seed_from_u64(8);
    let sram = SramArray::generate(&profile, 8192, &mut rng);
    let generator = KeyGenerator::paper_default();
    let enrollment = generator
        .enroll(&sram.power_up(&env, &mut rng), &mut rng)
        .expect("8 KiBit suffices");

    group.bench_function("enroll_128bit_key_8192b_response", |b| {
        let response = sram.power_up(&env, &mut rng);
        b.iter(|| black_box(generator.enroll(&response, &mut rng).unwrap()));
    });

    group.bench_function("reconstruct_128bit_key", |b| {
        let response = sram.power_up(&env, &mut rng);
        b.iter(|| {
            black_box(
                generator
                    .reconstruct(&response, &enrollment.helper)
                    .unwrap(),
            )
        });
    });

    group.bench_function("golay_decode_3_errors", |b| {
        let golay = Golay::new();
        let msg = BitVec::from_bits((0..12).map(|i| i % 2 == 0));
        let mut word = golay.encode(&msg);
        for i in [1, 9, 20] {
            word.set(i, !word.get(i).unwrap());
        }
        b.iter(|| black_box(golay.decode(&word).unwrap()));
    });

    group.bench_function("concatenated_decode_noisy_block", |b| {
        let code = Concatenated::new(Golay::new(), Repetition::new(5).unwrap());
        let msg = BitVec::from_bits((0..12).map(|_| rng.gen::<bool>()));
        let mut word = code.encode(&msg);
        for i in 0..word.len() {
            if rng.gen::<f64>() < 0.03 {
                word.set(i, !word.get(i).unwrap());
            }
        }
        b.iter(|| black_box(code.decode(&word).unwrap()));
    });

    group.bench_function("polar_256_64_decode_noisy", |b| {
        let code = PolarCode::new(256, 64, 0.05).expect("valid parameters");
        let msg = BitVec::from_bits((0..64).map(|i| i % 2 == 0));
        let mut word = code.encode(&msg);
        for i in (0..word.len()).step_by(31) {
            word.set(i, !word.get(i).unwrap());
        }
        b.iter(|| black_box(code.decode(&word).unwrap()));
    });

    group.bench_function("sha256_1kib", |b| {
        let data = vec![0xA5u8; 1024];
        b.iter(|| black_box(sha256::digest(&data)));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
