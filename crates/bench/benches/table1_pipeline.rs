//! Table I — the end-to-end pipeline from campaign records to the
//! condensed table.

use criterion::{criterion_group, criterion_main, Criterion};
use pufassess::Assessment;
use pufbench::{run_campaign, run_campaign_with, Scale};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);

    // Campaign (simulation) cost of the sharded engine at 1 vs 8 worker
    // threads — the records are identical, only wall-clock changes.
    group.bench_function("campaign_smoke_threads_1", |b| {
        b.iter(|| black_box(run_campaign_with(Scale::Smoke, 7, 1)));
    });

    group.bench_function("campaign_smoke_threads_8", |b| {
        b.iter(|| black_box(run_campaign_with(Scale::Smoke, 7, 8)));
    });

    // Separate the campaign (simulation) cost from the assessment
    // (analysis) cost: the paper's pipeline is dominated by the latter once
    // the 175 M measurements exist.
    let dataset = run_campaign(Scale::Smoke, 7);
    let protocol = Scale::Smoke.protocol();

    group.bench_function("assessment_from_records_smoke", |b| {
        b.iter(|| black_box(Assessment::from_dataset(&dataset, &protocol).unwrap()));
    });

    let assessment = Assessment::from_dataset(&dataset, &protocol).unwrap();
    group.bench_function("table1_from_assessment", |b| {
        b.iter(|| black_box(assessment.table1()));
    });

    group.bench_function("table1_render", |b| {
        let table = assessment.table1();
        b.iter(|| black_box(table.render()));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
