//! Fig. 4 — capturing and rasterizing a 1 KB start-up pattern.

use criterion::{criterion_group, criterion_main, Criterion};
use pufassess::visualize::{ascii_raster, pgm_image};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sramcell::{Environment, SramArray, TechnologyProfile};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4");
    let profile = TechnologyProfile::atmega32u4();
    let mut rng = StdRng::seed_from_u64(4);
    let sram = SramArray::generate(&profile, 8 * 1024, &mut rng);
    let env = Environment::nominal(&profile);
    let pattern = sram.power_up(&env, &mut rng);

    group.bench_function("power_up_8192_bits", |b| {
        b.iter(|| black_box(sram.power_up(&env, &mut rng)));
    });

    group.bench_function("ascii_raster_8192", |b| {
        b.iter(|| black_box(ascii_raster(&pattern, 128)));
    });

    group.bench_function("pgm_image_8192", |b| {
        b.iter(|| black_box(pgm_image(&pattern, 128)));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
