//! Streaming-pipeline throughput: JSON-line parsing (sequential vs the
//! parallel reader) and the window accumulator's per-record fold — the
//! records/sec that bound how fast a paper-scale file assesses.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pufassess::streaming::WindowAccumulator;
use pufbench::Scale;
use puftestbed::store::{read_json_lines, ParallelRecordReader, Record, RecordSink};
use puftestbed::Campaign;
use std::hint::black_box;
use std::io::Cursor;

fn bench(c: &mut Criterion) {
    let scale = Scale::Smoke;
    let dataset = Campaign::new(scale.campaign_config(), 31).run_in_memory();
    let records: Vec<Record> = dataset.records().to_vec();
    let mut sink = puftestbed::store::JsonLinesSink::new(Vec::new());
    for r in &records {
        sink.record(r).unwrap();
    }
    let bytes = sink.into_inner().unwrap();
    let n = records.len() as u64;

    let mut group = c.benchmark_group("streaming");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n));

    group.bench_function("parse_sequential", |b| {
        b.iter(|| {
            let count = read_json_lines(Cursor::new(bytes.clone()))
                .filter(|r| r.is_ok())
                .count();
            black_box(count)
        });
    });

    for threads in [2, 4] {
        group.bench_function(&format!("parse_parallel_{threads}t"), |b| {
            b.iter(|| {
                let reader = ParallelRecordReader::spawn(
                    Cursor::new(bytes.clone()),
                    threads,
                    puftestbed::store::DEFAULT_BATCH_LINES,
                );
                black_box(reader.filter(|r| r.is_ok()).count())
            });
        });
    }

    group.bench_function("accumulator_fold", |b| {
        b.iter(|| {
            let mut accumulator = WindowAccumulator::new(scale.protocol());
            for r in &records {
                accumulator.push(r);
            }
            black_box(accumulator.finish().unwrap())
        });
    });

    group.bench_function("parse_and_fold_4t", |b| {
        b.iter(|| {
            let reader = ParallelRecordReader::spawn(Cursor::new(bytes.clone()), 4, 1024);
            let mut accumulator = WindowAccumulator::new(scale.protocol());
            for item in reader {
                accumulator.push(&item.unwrap());
            }
            black_box(accumulator.finish().unwrap())
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
