//! Store codec throughput: records/sec encoding and decoding the same
//! corpus as JSON lines vs `pufrec/1` binary, plus the parallel readers at
//! 2 and 4 threads — the numbers behind the format choice. The corpus sizes
//! (and their ratio) are printed once, since the on-disk win matters as
//! much as the CPU win.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pufbench::Scale;
use puftestbed::store::{
    read_json_lines, BinaryRecordReader, BinarySink, JsonLinesSink, ParallelRecordReader, Record,
    RecordSink,
};
use puftestbed::Campaign;
use std::hint::black_box;
use std::io::Cursor;

fn bench(c: &mut Criterion) {
    let scale = Scale::Smoke;
    let dataset = Campaign::new(scale.campaign_config(), 31).run_in_memory();
    let records: Vec<Record> = dataset.records().to_vec();
    let n = records.len() as u64;

    let mut json_sink = JsonLinesSink::new(Vec::new());
    let mut binary_sink = BinarySink::new(Vec::new()).unwrap();
    for r in &records {
        json_sink.record(r).unwrap();
        binary_sink.record(r).unwrap();
    }
    let json_bytes = json_sink.into_inner().unwrap();
    let binary_bytes = binary_sink.into_inner().unwrap();
    println!(
        "corpus: {n} records, json {} bytes, binary {} bytes ({:.2}x smaller)",
        json_bytes.len(),
        binary_bytes.len(),
        json_bytes.len() as f64 / binary_bytes.len() as f64
    );

    let mut group = c.benchmark_group("store_codec");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n));

    group.bench_function("encode_json", |b| {
        b.iter(|| {
            let mut sink = JsonLinesSink::new(Vec::with_capacity(json_bytes.len()));
            for r in &records {
                sink.record(r).unwrap();
            }
            black_box(sink.into_inner().unwrap())
        });
    });

    group.bench_function("encode_binary", |b| {
        b.iter(|| {
            let mut sink = BinarySink::new(Vec::with_capacity(binary_bytes.len())).unwrap();
            for r in &records {
                sink.record(r).unwrap();
            }
            black_box(sink.into_inner().unwrap())
        });
    });

    group.bench_function("decode_json_sequential", |b| {
        b.iter(|| {
            let count = read_json_lines(Cursor::new(json_bytes.clone()))
                .filter(|r| r.is_ok())
                .count();
            black_box(count)
        });
    });

    group.bench_function("decode_binary_sequential", |b| {
        b.iter(|| {
            let mut rest = &binary_bytes[puftestbed::store::binary::HEADER_LEN..];
            let mut count = 0usize;
            while !rest.is_empty() {
                let (record, used) = Record::decode_binary(rest).unwrap();
                black_box(&record);
                rest = &rest[used..];
                count += 1;
            }
            black_box(count)
        });
    });

    for threads in [2, 4] {
        group.bench_function(&format!("decode_json_parallel_{threads}t"), |b| {
            b.iter(|| {
                let reader = ParallelRecordReader::spawn(
                    Cursor::new(json_bytes.clone()),
                    threads,
                    puftestbed::store::DEFAULT_BATCH_LINES,
                );
                black_box(reader.filter(|r| r.is_ok()).count())
            });
        });
        group.bench_function(&format!("decode_binary_parallel_{threads}t"), |b| {
            b.iter(|| {
                let reader = BinaryRecordReader::spawn(
                    Cursor::new(binary_bytes.clone()),
                    threads,
                    puftestbed::store::DEFAULT_BATCH_LINES,
                );
                black_box(reader.filter(|r| r.is_ok()).count())
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
