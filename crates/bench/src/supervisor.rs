//! Crash-restarting supervisor for campaign children.
//!
//! Runs the `campaign` binary as a child process and keeps it making
//! progress: a child that exits non-zero (an injected I/O fault, a real
//! disk error, a `kill -9`) is restarted from the newest checkpoint that
//! still verifies, after a capped exponential backoff and within a bounded
//! restart budget. A child that stops touching its output and checkpoint
//! files for longer than the stall timeout is killed and restarted the
//! same way.
//!
//! Checkpoint generations (`FILE`, `FILE.1`, … — see
//! [`checkpoint::generation_path`]) are tried newest first; a generation
//! whose framing or CRC no longer verifies is *quarantined* (renamed to
//! `<gen>.quarantined-<n>`, preserving the evidence) and the next older
//! one is tried. Because the campaign's resume path replays exactly the
//! records the checkpoint claims and discards any torn tail, the final
//! output of a supervised, repeatedly-killed run is byte-identical to an
//! uninterrupted one — that equivalence is what the CI torture job
//! asserts with `cmp`.
//!
//! Restart counts are passed to the child as `--io-incarnation` (only
//! when the child runs under `--io-faults`), so each incarnation draws a
//! fresh deterministic fault schedule: a plan that killed incarnation 0 at
//! write op 7 will not deterministically kill every retry at the same op.
//! Fault plans can also disarm themselves after K incarnations
//! (`max_incarnations`), making a supervised torture run provably
//! terminate within its restart budget.

use pufobs::Instruments;
use puftestbed::store::checkpoint;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant, SystemTime};

/// Restart and watchdog policy.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// How many restarts the run may consume before the supervisor gives
    /// up (the first launch is not a restart).
    pub max_restarts: u32,
    /// Backoff before the first restart; doubles per restart.
    pub backoff: Duration,
    /// Upper bound on the (exponentially growing) backoff.
    pub max_backoff: Duration,
    /// A child whose output/checkpoint files all stay untouched this long
    /// is considered stalled and killed.
    pub stall_timeout: Duration,
    /// How often the watchdog samples child status and file mtimes.
    pub poll: Duration,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            max_restarts: 10,
            backoff: Duration::from_millis(100),
            max_backoff: Duration::from_secs(10),
            stall_timeout: Duration::from_secs(60),
            poll: Duration::from_millis(50),
        }
    }
}

/// The child command line, with the paths the watchdog and resume logic
/// need parsed out of it.
#[derive(Debug, Clone)]
pub struct ChildSpec {
    /// The program to run (normally the `campaign` binary).
    pub program: String,
    /// Its arguments, verbatim. `--resume-from` and `--io-incarnation`
    /// are appended by the supervisor per incarnation and must not appear
    /// here.
    pub args: Vec<String>,
    /// The child's `--out` target, watched for progress.
    pub out: Option<PathBuf>,
    /// The child's `--checkpoint-out` target: the restart point.
    pub checkpoint: Option<PathBuf>,
    /// The child's `--checkpoint-keep` (generations available to fall
    /// back through), default 1.
    pub checkpoint_keep: u32,
    /// Whether the child runs under `--io-faults` (and so understands
    /// `--io-incarnation`).
    pub io_faulted: bool,
}

impl ChildSpec {
    /// Parses a child command line (`program arg…`). Flags the supervisor
    /// owns (`--resume-from`, `--io-incarnation`) are rejected: the whole
    /// point is that the supervisor decides where each incarnation resumes
    /// from.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let (program, args) = argv.split_first().ok_or("empty child command after `--`")?;
        let mut spec = Self {
            program: program.clone(),
            args: args.to_vec(),
            out: None,
            checkpoint: None,
            checkpoint_keep: 1,
            io_faulted: false,
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--resume-from" | "--io-incarnation" => {
                    return Err(format!(
                        "{arg} belongs to the supervisor: it picks the checkpoint and \
                         incarnation for every restart"
                    ));
                }
                "--out" => spec.out = iter.next().map(PathBuf::from),
                "--checkpoint-out" => spec.checkpoint = iter.next().map(PathBuf::from),
                "--checkpoint-keep" => {
                    spec.checkpoint_keep = iter
                        .next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--checkpoint-keep needs a positive integer")?;
                }
                "--io-faults" => {
                    spec.io_faulted = true;
                    iter.next();
                }
                _ => {}
            }
        }
        if spec.checkpoint.is_none() {
            return Err(
                "child command has no --checkpoint-out FILE: without checkpoints there is \
                 nothing to restart from"
                    .into(),
            );
        }
        Ok(spec)
    }

    /// The files whose mtimes count as progress for the stall watchdog.
    fn watched_paths(&self) -> Vec<PathBuf> {
        let mut paths = Vec::new();
        if let Some(out) = &self.out {
            paths.push(out.clone());
            paths.push(tmp_of(out));
        }
        if let Some(ckpt) = &self.checkpoint {
            paths.push(ckpt.clone());
            paths.push(tmp_of(ckpt));
        }
        paths
    }
}

fn tmp_of(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(".tmp");
    PathBuf::from(name)
}

/// How a supervised run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The child completed cleanly after `restarts` restarts.
    Completed {
        /// Restarts consumed before the clean exit.
        restarts: u32,
    },
    /// The restart budget ran out before a clean exit.
    BudgetExhausted {
        /// Restarts consumed (equals the configured budget).
        restarts: u32,
    },
}

/// The `supervisor.*` counters, mirroring the `io.*` discipline: the
/// conservation identity `supervisor.restarts == supervisor.child_exits -
/// supervisor.clean_exits` holds exactly for every run that ends in
/// [`Outcome::Completed`].
struct SupervisorStats {
    child_exits: pufobs::Counter,
    clean_exits: pufobs::Counter,
    restarts: pufobs::Counter,
    stall_kills: pufobs::Counter,
    quarantined: pufobs::Counter,
    backoff_ms: pufobs::Counter,
}

impl SupervisorStats {
    fn new(ins: &Instruments) -> Self {
        Self {
            child_exits: ins.counter("supervisor.child_exits"),
            clean_exits: ins.counter("supervisor.clean_exits"),
            restarts: ins.counter("supervisor.restarts"),
            stall_kills: ins.counter("supervisor.stall_kills"),
            quarantined: ins.counter("supervisor.checkpoints_quarantined"),
            backoff_ms: ins.counter("supervisor.backoff_ms"),
        }
    }
}

/// Finds the newest checkpoint generation that still verifies, renaming
/// every newer, damaged generation to `<gen>.quarantined-<n>` (evidence is
/// preserved, and the damaged file can no longer shadow an older intact
/// one). Returns the path to resume from, or `None` when no generation
/// survives (the campaign then restarts from scratch).
pub fn newest_valid_checkpoint(
    path: &Path,
    keep: u32,
    mut on_quarantine: impl FnMut(&Path, &Path),
) -> Option<PathBuf> {
    for generation in 0..keep.max(1) {
        let candidate = checkpoint::generation_path(path, generation);
        if !candidate.exists() {
            continue;
        }
        match checkpoint::read_file(&candidate) {
            Ok(_) => return Some(candidate),
            Err(_) => {
                let jail = quarantine_name(&candidate);
                if std::fs::rename(&candidate, &jail).is_ok() {
                    on_quarantine(&candidate, &jail);
                }
            }
        }
    }
    None
}

fn quarantine_name(path: &Path) -> PathBuf {
    for n in 0.. {
        let mut name = path.as_os_str().to_os_string();
        name.push(format!(".quarantined-{n}"));
        let candidate = PathBuf::from(name);
        if !candidate.exists() {
            return candidate;
        }
    }
    unreachable!("some quarantine suffix is free")
}

/// Runs the child to completion under the restart policy. Returns the
/// outcome; spawn failures (program not found) are hard errors.
pub fn run(
    spec: &ChildSpec,
    config: &SupervisorConfig,
    ins: Option<&Instruments>,
) -> io::Result<Outcome> {
    let stats = ins.map(SupervisorStats::new);
    let mut restarts = 0u32;
    loop {
        let resume = spec.checkpoint.as_deref().and_then(|ckpt| {
            newest_valid_checkpoint(ckpt, spec.checkpoint_keep, |from, to| {
                eprintln!(
                    "supervisor: checkpoint {} failed verification, quarantined as {}",
                    from.display(),
                    to.display()
                );
                if let Some(s) = &stats {
                    s.quarantined.inc();
                }
            })
        });
        let mut command = Command::new(&spec.program);
        command.args(&spec.args);
        match &resume {
            Some(ckpt) => {
                eprintln!(
                    "supervisor: incarnation {restarts} resumes from {}",
                    ckpt.display()
                );
                command.arg("--resume-from").arg(ckpt);
            }
            None if restarts > 0 => {
                eprintln!("supervisor: incarnation {restarts} restarts from scratch");
            }
            None => {}
        }
        if spec.io_faulted {
            command.arg("--io-incarnation").arg(restarts.to_string());
        }
        let mut child = command.spawn()?;
        let status = watch(&mut child, spec, config, stats.as_ref())?;
        if let Some(s) = &stats {
            s.child_exits.inc();
        }
        if status {
            if let Some(s) = &stats {
                s.clean_exits.inc();
            }
            return Ok(Outcome::Completed { restarts });
        }
        if restarts >= config.max_restarts {
            return Ok(Outcome::BudgetExhausted { restarts });
        }
        // Capped exponential backoff: backoff · 2^restarts, saturating.
        let factor = 1u64 << restarts.min(20);
        let wait = config
            .backoff
            .saturating_mul(u32::try_from(factor.min(u64::from(u32::MAX))).unwrap_or(u32::MAX))
            .min(config.max_backoff);
        if let Some(s) = &stats {
            s.backoff_ms.add(wait.as_millis() as u64);
        }
        std::thread::sleep(wait);
        restarts += 1;
        if let Some(s) = &stats {
            s.restarts.inc();
        }
    }
}

/// Waits for the child while running the stall watchdog. Returns whether
/// the child exited cleanly; a stalled child is killed (and reported as an
/// unclean exit).
fn watch(
    child: &mut Child,
    spec: &ChildSpec,
    config: &SupervisorConfig,
    stats: Option<&SupervisorStats>,
) -> io::Result<bool> {
    let watched = spec.watched_paths();
    let mut last_stamp = progress_stamp(&watched);
    let mut last_change = Instant::now();
    loop {
        if let Some(status) = child.try_wait()? {
            return Ok(status.success());
        }
        let stamp = progress_stamp(&watched);
        if stamp != last_stamp {
            last_stamp = stamp;
            last_change = Instant::now();
        } else if last_change.elapsed() >= config.stall_timeout {
            eprintln!(
                "supervisor: no file progress for {:?}, killing stalled child",
                config.stall_timeout
            );
            if let Some(s) = stats {
                s.stall_kills.inc();
            }
            child.kill()?;
            child.wait()?;
            return Ok(false);
        }
        std::thread::sleep(config.poll);
    }
}

/// A fingerprint of "the child is getting somewhere": the newest mtime
/// (and the sizes) of the watched files. Size is included because a file
/// rewritten within mtime granularity still counts as progress.
fn progress_stamp(paths: &[PathBuf]) -> Vec<Option<(SystemTime, u64)>> {
    paths
        .iter()
        .map(|p| {
            std::fs::metadata(p)
                .ok()
                .and_then(|m| m.modified().ok().map(|t| (t, m.len())))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pufsup-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn child_spec_extracts_paths_and_rejects_supervisor_flags() {
        let spec = ChildSpec::parse(&args(&[
            "campaign",
            "--out",
            "rec.pufrec",
            "--checkpoint-out",
            "ck.pufchk",
            "--checkpoint-keep",
            "3",
            "--io-faults",
            "plan.json",
        ]))
        .unwrap();
        assert_eq!(spec.out.as_deref(), Some(Path::new("rec.pufrec")));
        assert_eq!(spec.checkpoint.as_deref(), Some(Path::new("ck.pufchk")));
        assert_eq!(spec.checkpoint_keep, 3);
        assert!(spec.io_faulted);

        let err = ChildSpec::parse(&args(&[
            "campaign",
            "--checkpoint-out",
            "ck",
            "--resume-from",
            "x",
        ]))
        .unwrap_err();
        assert!(err.contains("--resume-from"), "{err}");

        let err = ChildSpec::parse(&args(&["campaign", "--out", "rec"])).unwrap_err();
        assert!(err.contains("--checkpoint-out"), "{err}");
    }

    /// Writes a genuine, verifiable checkpoint by running a tiny campaign.
    fn real_checkpoint(path: &Path) {
        let config = puftestbed::CampaignConfig {
            boards: 1,
            months: 1,
            reads_per_window: 1,
            read_bits: 16,
            sram_bits: 16,
            ..Default::default()
        };
        let mut sink = puftestbed::store::JsonLinesSink::new(Vec::new());
        puftestbed::Campaign::new(config, 7)
            .checkpoints(1, path)
            .run(&mut sink)
            .unwrap();
        assert!(path.exists());
    }

    #[test]
    fn newest_valid_checkpoint_quarantines_and_falls_back() {
        let dir = temp("fallback");
        let ckpt = dir.join("ck.pufchk");
        // Generation 1 (older) is a real checkpoint; generation 0 (newer)
        // is torn garbage.
        real_checkpoint(&checkpoint::generation_path(&ckpt, 1));
        fs::write(&ckpt, b"pufchk torn garbage").unwrap();

        let mut quarantined = Vec::new();
        let found = newest_valid_checkpoint(&ckpt, 3, |from, to| {
            quarantined.push((from.to_path_buf(), to.to_path_buf()));
        })
        .expect("generation 1 survives");
        assert_eq!(found, checkpoint::generation_path(&ckpt, 1));
        assert_eq!(quarantined.len(), 1);
        assert_eq!(quarantined[0].0, ckpt);
        assert!(quarantined[0].1.exists(), "evidence preserved");
        assert!(!ckpt.exists(), "damaged generation renamed away");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn newest_valid_checkpoint_none_when_everything_is_damaged() {
        let dir = temp("alldead");
        let ckpt = dir.join("ck.pufchk");
        fs::write(&ckpt, b"nope").unwrap();
        let mut count = 0;
        assert!(newest_valid_checkpoint(&ckpt, 2, |_, _| count += 1).is_none());
        assert_eq!(count, 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
