//! Converts a record file between the JSON-lines and `pufrec/1` binary
//! stores, losslessly — every field round-trips bit-for-bit, so assessing
//! the converted file produces byte-identical output.
//!
//! ```text
//! convert --in records.jsonl --out records.pufrec --format binary
//!         [--threads N] [--batch N]
//! ```
//!
//! The input format is detected from the file's first bytes; `--format`
//! names the *output* format. Decoding runs on the parallel reader
//! pipeline, so large corpora convert at close to disk speed. Any
//! malformed or corrupt input record aborts the conversion: a migration
//! must be exact, and silently dropping records would make the converted
//! file assess differently from its source.

use pufbench::FormatSink;
use puftestbed::store::{AnyRecordReader, RecordFormat, RecordSink, DEFAULT_BATCH_LINES};
use std::fs::File;
use std::io::BufReader;
use std::process::exit;

fn main() {
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut format: Option<RecordFormat> = None;
    let mut threads = pufbench::default_threads();
    let mut batch = DEFAULT_BATCH_LINES;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || {
            iter.next().unwrap_or_else(|| {
                eprintln!("{arg} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--in" => input = Some(value().clone()),
            "--out" => output = Some(value().clone()),
            "--format" => format = Some(parse(value(), "--format")),
            "--threads" => {
                threads = parse(value(), "--threads");
                if threads == 0 {
                    eprintln!("--threads must be positive");
                    exit(2);
                }
            }
            "--batch" => {
                batch = parse(value(), "--batch");
                if batch == 0 {
                    eprintln!("--batch must be positive");
                    exit(2);
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: convert --in FILE --out FILE --format json|binary \
                     [--threads N] [--batch N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                exit(2);
            }
        }
    }
    let (Some(input), Some(output), Some(format)) = (input, output, format) else {
        eprintln!("--in FILE, --out FILE and --format json|binary are required (try --help)");
        exit(2);
    };

    let file = File::open(&input).unwrap_or_else(|e| {
        eprintln!("cannot open {input}: {e}");
        exit(1);
    });
    let reader =
        AnyRecordReader::open(BufReader::new(file), threads, batch, None).unwrap_or_else(|e| {
            eprintln!("cannot read {input}: {e}");
            exit(1);
        });
    let in_format = reader.format();
    // The converted file's header cannot promise one read width: the input
    // may mix widths, so declare 0 (unspecified).
    let mut sink = FormatSink::create(&output, format, 0).unwrap_or_else(|e| {
        eprintln!("cannot create {output}: {e}");
        exit(1);
    });

    // On any failure the partial output is deleted: an aborted migration
    // must leave no file behind, or the prefix would pass for a conversion.
    let abort = |message: String| -> ! {
        eprintln!("{message}");
        eprintln!("conversion aborted: a migration must be lossless, not a silent prefix");
        let _ = std::fs::remove_file(&output);
        exit(1);
    };

    for (index, item) in reader.enumerate() {
        let record = match item {
            Ok(record) => record,
            Err(e) => abort(format!("{input}: record {index}: {e}")),
        };
        if let Err(e) = sink.record(&record) {
            abort(format!("writing {output} failed: {e}"));
        }
    }
    let written = sink.written();
    if let Err(e) = sink.finish() {
        abort(format!("flush of {output} failed: {e}"));
    }
    eprintln!("converted {written} records: {input} ({in_format}) → {output} ({format})");
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("invalid value `{value}` for {flag}");
        exit(2);
    })
}
