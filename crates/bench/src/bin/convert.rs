//! Converts a record file between the JSON-lines and `pufrec/1` binary
//! stores, losslessly — every field round-trips bit-for-bit, so assessing
//! the converted file produces byte-identical output.
//!
//! ```text
//! convert --in records.jsonl --out records.pufrec --format binary
//!         [--threads N] [--batch N]
//! ```
//!
//! The input format is detected from the file's first bytes; `--format`
//! names the *output* format. Decoding runs on the parallel reader
//! pipeline, so large corpora convert at close to disk speed. Any
//! malformed or corrupt input record aborts the conversion: a migration
//! must be exact, and silently dropping records would make the converted
//! file assess differently from its source. The output is written
//! atomically — it appears at `--out` only once the conversion is
//! complete, so an aborted migration leaves nothing that could pass for a
//! converted file.
//!
//! ## fsck / repair
//!
//! ```text
//! convert --fsck --in FILE [--repair --out FILE] [--journal FILE]
//!         [--format json|binary] [--metrics-out FILE]
//! ```
//!
//! `--fsck` verifies a `pufrec/1`, `pufchk/1`, or JSON-lines file
//! (framing, CRCs, parseability) and reports every damaged byte range with
//! its exact offset. With `--repair`, the intact frames are salvaged into
//! `--out` (written atomically) alongside a `pufsck/1` JSON journal
//! (default `<out>.journal`) that accounts for *every* input byte:
//! `bytes_kept + bytes_dropped == bytes_total`. Checkpoints are
//! all-or-nothing — a damaged `pufchk/1` cannot be repaired, only
//! detected. Exit codes: 0 the file is clean, 1 damaged but repaired,
//! 2 usage error, 4 damaged and not repaired.

use pufbench::{metrics, FormatSink};
use pufobs::Instruments;
use puftestbed::store::json::JsonValue;
use puftestbed::store::{
    fsck, AnyRecordReader, AtomicFile, RecordFormat, RecordSink, DEFAULT_BATCH_LINES,
};
use puftestbed::Record;
use std::fs::File;
use std::io::{BufReader, Write};
use std::process::exit;

fn main() {
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut format: Option<RecordFormat> = None;
    let mut threads = pufbench::default_threads();
    let mut batch = DEFAULT_BATCH_LINES;
    let mut fsck_mode = false;
    let mut repair = false;
    let mut journal: Option<String> = None;
    let mut metrics_out: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || {
            iter.next().unwrap_or_else(|| {
                eprintln!("{arg} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--in" => input = Some(value().clone()),
            "--out" => output = Some(value().clone()),
            "--format" => format = Some(parse(value(), "--format")),
            "--threads" => {
                threads = parse(value(), "--threads");
                if threads == 0 {
                    eprintln!("--threads must be positive");
                    exit(2);
                }
            }
            "--batch" => {
                batch = parse(value(), "--batch");
                if batch == 0 {
                    eprintln!("--batch must be positive");
                    exit(2);
                }
            }
            "--fsck" => fsck_mode = true,
            "--repair" => repair = true,
            "--journal" => journal = Some(value().clone()),
            "--metrics-out" => metrics_out = Some(value().clone()),
            "--help" | "-h" => {
                eprintln!(
                    "usage: convert --in FILE --out FILE --format json|binary \
                     [--threads N] [--batch N]\n       \
                     convert --fsck --in FILE [--repair --out FILE] [--journal FILE] \
                     [--format json|binary] [--metrics-out FILE]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                exit(2);
            }
        }
    }
    if repair && !fsck_mode {
        eprintln!("--repair only makes sense with --fsck (try --help)");
        exit(2);
    }
    if fsck_mode {
        let Some(input) = input else {
            eprintln!("--fsck needs --in FILE (try --help)");
            exit(2);
        };
        if repair && output.is_none() {
            eprintln!("--repair needs --out FILE for the salvaged copy");
            exit(2);
        }
        exit(run_fsck(
            &input,
            repair,
            output.as_deref(),
            journal.as_deref(),
            format,
            metrics_out.as_deref(),
        ));
    }
    let (Some(input), Some(output), Some(format)) = (input, output, format) else {
        eprintln!("--in FILE, --out FILE and --format json|binary are required (try --help)");
        exit(2);
    };

    match convert(&input, &output, format, threads, batch) {
        Ok((written, in_format)) => {
            eprintln!("converted {written} records: {input} ({in_format}) → {output} ({format})")
        }
        Err(message) => {
            // The atomic sink never published anything at `--out`: an
            // aborted migration leaves no file that could pass for a
            // conversion.
            eprintln!("{message}");
            eprintln!("conversion aborted: a migration must be lossless, not a silent prefix");
            exit(1);
        }
    }
}

fn convert(
    input: &str,
    output: &str,
    format: RecordFormat,
    threads: usize,
    batch: usize,
) -> Result<(u64, RecordFormat), String> {
    let file = File::open(input).map_err(|e| format!("cannot open {input}: {e}"))?;
    let reader = AnyRecordReader::open(BufReader::new(file), threads, batch, None)
        .map_err(|e| format!("cannot read {input}: {e}"))?;
    let in_format = reader.format();
    // The converted file's header cannot promise one read width: the input
    // may mix widths, so declare 0 (unspecified).
    let mut sink = FormatSink::create(output, format, 0)
        .map_err(|e| format!("cannot create {output}: {e}"))?;
    // Early returns drop `sink`, which removes the unpublished temp file.
    for (index, item) in reader.enumerate() {
        let record = item.map_err(|e| format!("{input}: record {index}: {e}"))?;
        sink.record(&record)
            .map_err(|e| format!("writing {output} failed: {e}"))?;
    }
    let written = sink.written();
    sink.finish()
        .map_err(|e| format!("flush of {output} failed: {e}"))?;
    Ok((written, in_format))
}

/// Which on-disk store a file holds, for the fsck pass.
#[derive(Clone, Copy, PartialEq)]
enum Store {
    Pufrec,
    Pufchk,
    Json,
}

/// Detects the store from the file's leading magic. A `pufrec/1` file with
/// a destroyed header has no magic left, so as a fallback the pufrec
/// salvage scanner probes for frames — if it locks onto any, the file is
/// treated as (headerless) pufrec rather than JSON.
fn detect(bytes: &[u8]) -> Store {
    if bytes.starts_with(b"pufrec") {
        Store::Pufrec
    } else if bytes.starts_with(b"pufchk") {
        Store::Pufchk
    } else if fsck::salvage_pufrec(bytes, |_| {}).frames_ok > 0 {
        Store::Pufrec
    } else {
        Store::Json
    }
}

/// Runs `--fsck` and returns the process exit code: 0 clean, 1 damaged but
/// repaired, 4 damaged and not repaired. I/O failures exit 1 directly.
fn run_fsck(
    input: &str,
    repair: bool,
    out: Option<&str>,
    journal: Option<&str>,
    out_format: Option<RecordFormat>,
    metrics_out: Option<&str>,
) -> i32 {
    let bytes = std::fs::read(input).unwrap_or_else(|e| {
        eprintln!("cannot read {input}: {e}");
        exit(1);
    });
    let store = detect(&bytes);
    let mut kept: Vec<Record> = Vec::new();
    let report = match store {
        Store::Pufrec => fsck::salvage_pufrec(&bytes, |r| kept.push(r.clone())),
        Store::Pufchk => fsck::fsck_pufchk(&bytes),
        Store::Json => fsck::salvage_json_lines(&bytes, |r| kept.push(r.clone())),
    };
    eprintln!(
        "fsck {input} ({}): {} intact frame(s), {} of {} byte(s) dropped in {} range(s){}",
        report.format,
        report.frames_ok,
        report.bytes_dropped,
        report.bytes_total,
        report.dropped.len(),
        if report.header_ok {
            ""
        } else {
            " — file header damaged"
        }
    );
    for range in &report.dropped {
        eprintln!(
            "  dropped {} byte(s) at offset {}: {}",
            range.len, range.offset, range.reason
        );
    }

    // A damaged checkpoint has no record sequence to salvage from: it is
    // detectable but not repairable.
    let repairable = store != Store::Pufchk;
    let repaired = if repair && repairable {
        let out = out.expect("--repair requires --out");
        let format = out_format.unwrap_or(match store {
            Store::Json => RecordFormat::Json,
            _ => RecordFormat::Binary,
        });
        let declared_bits = match store {
            Store::Pufrec => fsck::repair_header(&bytes).declared_bits,
            _ => 0,
        };
        let mut sink = FormatSink::create(out, format, declared_bits).unwrap_or_else(|e| {
            eprintln!("cannot create {out}: {e}");
            exit(1);
        });
        for record in &kept {
            if let Err(e) = sink.record(record) {
                eprintln!("writing {out} failed: {e}");
                exit(1);
            }
        }
        if let Err(e) = sink.finish() {
            eprintln!("flush of {out} failed: {e}");
            exit(1);
        }
        eprintln!("repaired: {} record(s) salvaged into {out}", kept.len());
        true
    } else {
        false
    };

    // The journal defaults next to the repaired file; an explicit
    // `--journal` also works for a verify-only pass.
    let journal_path = journal
        .map(str::to_string)
        .or_else(|| repair.then(|| format!("{}.journal", out.unwrap_or(input))));
    if let Some(path) = journal_path {
        if let Err(e) = write_journal(&path, input, &report, repaired) {
            eprintln!("cannot write journal {path}: {e}");
            exit(1);
        }
        eprintln!("journal written to {path}");
    }

    if let Some(path) = metrics_out {
        let ins = Instruments::new();
        ins.counter("fsck.files_scanned").inc();
        ins.counter("fsck.bytes_total").add(report.bytes_total);
        ins.counter("fsck.bytes_kept").add(report.bytes_kept);
        ins.counter("fsck.bytes_dropped").add(report.bytes_dropped);
        ins.counter("fsck.frames_ok").add(report.frames_ok);
        ins.counter("fsck.ranges_dropped")
            .add(report.dropped.len() as u64);
        if repaired {
            ins.counter("fsck.repairs").inc();
        }
        if let Err(e) = metrics::write_metrics(path, &ins) {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        }
    }

    if report.clean() {
        0
    } else if repaired {
        1
    } else {
        if repair && !repairable {
            eprintln!("checkpoints are all-or-nothing: nothing to salvage, not repaired");
        }
        4
    }
}

/// Writes the `pufsck/1` journal atomically. Every input byte is accounted
/// for: `bytes_kept + bytes_dropped == bytes_total`, with each dropped
/// range carrying its exact offset, length, and cause.
fn write_journal(
    path: &str,
    input: &str,
    report: &fsck::FsckReport,
    repaired: bool,
) -> std::io::Result<()> {
    let dropped: Vec<JsonValue> = report
        .dropped
        .iter()
        .map(|d| {
            JsonValue::Object(vec![
                ("offset".into(), JsonValue::UInt(d.offset)),
                ("len".into(), JsonValue::UInt(d.len)),
                ("reason".into(), JsonValue::String(d.reason.clone())),
            ])
        })
        .collect();
    let journal = JsonValue::Object(vec![
        ("format".into(), JsonValue::String("pufsck/1".into())),
        ("store".into(), JsonValue::String(report.format.into())),
        ("source".into(), JsonValue::String(input.into())),
        ("bytes_total".into(), JsonValue::UInt(report.bytes_total)),
        ("bytes_kept".into(), JsonValue::UInt(report.bytes_kept)),
        (
            "bytes_dropped".into(),
            JsonValue::UInt(report.bytes_dropped),
        ),
        ("frames_ok".into(), JsonValue::UInt(report.frames_ok)),
        ("header_ok".into(), JsonValue::Bool(report.header_ok)),
        ("repaired".into(), JsonValue::Bool(repaired)),
        ("dropped".into(), JsonValue::Array(dropped)),
    ]);
    let mut file = AtomicFile::create(path)?;
    writeln!(file, "{journal}")?;
    file.persist()
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("invalid value `{value}` for {flag}");
        exit(2);
    })
}
