//! Converts a record file between the JSON-lines and `pufrec/1` binary
//! stores, losslessly — every field round-trips bit-for-bit, so assessing
//! the converted file produces byte-identical output.
//!
//! ```text
//! convert --in records.jsonl --out records.pufrec --format binary
//!         [--threads N] [--batch N]
//! ```
//!
//! The input format is detected from the file's first bytes; `--format`
//! names the *output* format. Decoding runs on the parallel reader
//! pipeline, so large corpora convert at close to disk speed. Any
//! malformed or corrupt input record aborts the conversion: a migration
//! must be exact, and silently dropping records would make the converted
//! file assess differently from its source. The output is written
//! atomically — it appears at `--out` only once the conversion is
//! complete, so an aborted migration leaves nothing that could pass for a
//! converted file.

use pufbench::FormatSink;
use puftestbed::store::{AnyRecordReader, RecordFormat, RecordSink, DEFAULT_BATCH_LINES};
use std::fs::File;
use std::io::BufReader;
use std::process::exit;

fn main() {
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut format: Option<RecordFormat> = None;
    let mut threads = pufbench::default_threads();
    let mut batch = DEFAULT_BATCH_LINES;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || {
            iter.next().unwrap_or_else(|| {
                eprintln!("{arg} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--in" => input = Some(value().clone()),
            "--out" => output = Some(value().clone()),
            "--format" => format = Some(parse(value(), "--format")),
            "--threads" => {
                threads = parse(value(), "--threads");
                if threads == 0 {
                    eprintln!("--threads must be positive");
                    exit(2);
                }
            }
            "--batch" => {
                batch = parse(value(), "--batch");
                if batch == 0 {
                    eprintln!("--batch must be positive");
                    exit(2);
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: convert --in FILE --out FILE --format json|binary \
                     [--threads N] [--batch N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                exit(2);
            }
        }
    }
    let (Some(input), Some(output), Some(format)) = (input, output, format) else {
        eprintln!("--in FILE, --out FILE and --format json|binary are required (try --help)");
        exit(2);
    };

    match convert(&input, &output, format, threads, batch) {
        Ok((written, in_format)) => {
            eprintln!("converted {written} records: {input} ({in_format}) → {output} ({format})")
        }
        Err(message) => {
            // The atomic sink never published anything at `--out`: an
            // aborted migration leaves no file that could pass for a
            // conversion.
            eprintln!("{message}");
            eprintln!("conversion aborted: a migration must be lossless, not a silent prefix");
            exit(1);
        }
    }
}

fn convert(
    input: &str,
    output: &str,
    format: RecordFormat,
    threads: usize,
    batch: usize,
) -> Result<(u64, RecordFormat), String> {
    let file = File::open(input).map_err(|e| format!("cannot open {input}: {e}"))?;
    let reader = AnyRecordReader::open(BufReader::new(file), threads, batch, None)
        .map_err(|e| format!("cannot read {input}: {e}"))?;
    let in_format = reader.format();
    // The converted file's header cannot promise one read width: the input
    // may mix widths, so declare 0 (unspecified).
    let mut sink = FormatSink::create(output, format, 0)
        .map_err(|e| format!("cannot create {output}: {e}"))?;
    // Early returns drop `sink`, which removes the unpublished temp file.
    for (index, item) in reader.enumerate() {
        let record = item.map_err(|e| format!("{input}: record {index}: {e}"))?;
        sink.record(&record)
            .map_err(|e| format!("writing {output} failed: {e}"))?;
    }
    let written = sink.written();
    sink.finish()
        .map_err(|e| format!("flush of {output} failed: {e}"))?;
    Ok((written, in_format))
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("invalid value `{value}` for {flag}");
        exit(2);
    })
}
