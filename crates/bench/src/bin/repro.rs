//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--scale smoke|small|paper] [--seed N] [--threads N] \
//!       [--records-out FILE] [--format json|binary] [--out-dir DIR] \
//!       [--metrics-out FILE] [--verbose] \
//!       [--checkpoint-out FILE] [--checkpoint-every N] \
//!       [--resume-from FILE] [--halt-after-windows N] \
//!       [--io-faults FILE] \
//!       [--fig3] [--fig4] [--fig5] [--fig6] [--table1] [--accel]
//!       [--keylife] [--all]
//! ```
//!
//! Artifacts are printed to stdout; `--fig4` additionally writes
//! `fig4_startup_pattern.pgm` under `--out-dir` (default `examples/out`,
//! created on demand). `--records-out` tees the campaign's records to a
//! file in the chosen `--format` (default json) while the same pass feeds
//! the assessment — re-assessing that file reproduces the printed tables.
//! `--metrics-out` dumps the `pufobs` pipeline snapshot (campaign and
//! accumulator counters) as JSON after the run; `--verbose` prints a
//! once-per-second progress heartbeat to stderr. None of these change the
//! printed artifacts by a byte.
//!
//! `--checkpoint-out`/`--checkpoint-every` write `pufchk/1` checkpoints at
//! window boundaries; `--resume-from` (which needs `--records-out`, the
//! file the interrupted stream is salvaged from) continues a halted or
//! killed run and reproduces the uninterrupted run's records and tables
//! exactly. `--halt-after-windows` stops the campaign early but
//! resumable.
//!
//! `--io-faults FILE` loads a deterministic storage fault plan (see
//! `puftestbed::store::iofault`) injected into the `--records-out`,
//! checkpoint, and resume-salvage I/O; without the flag every artifact is
//! byte-identical to a build without the fault layer.

use pufassess::report::{self, Series};
use pufassess::streaming::WindowAccumulator;
use pufassess::visualize;
use pufbench::{
    campaign_total_cycles, default_threads, metrics, reopen_for_resume_with,
    run_assessment_streaming_with, run_keylife_streaming_with, FormatSink, Scale,
};
use pufobs::Instruments;
use puftestbed::store::{checkpoint, IoFaultPlan, IoPolicy, RecordFormat, TeeSink};
use puftestbed::{Campaign, PowerWaveform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sramaging::accelerated;
use sramcell::{Environment, SramArray, TechnologyProfile};
use std::collections::BTreeSet;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut seed = 2017;
    let mut threads = default_threads();
    let mut records_out: Option<String> = None;
    let mut format = RecordFormat::Json;
    let mut out_dir = String::from("examples/out");
    let mut metrics_out: Option<String> = None;
    let mut verbose = false;
    let mut checkpoint_out: Option<String> = None;
    let mut checkpoint_every: u32 = 0;
    let mut resume_from: Option<String> = None;
    let mut halt_after: Option<u32> = None;
    let mut io_faults_from: Option<String> = None;
    let mut artifacts: BTreeSet<&'static str> = BTreeSet::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().expect("--scale needs a value");
                scale = Scale::parse(value).unwrap_or_else(|| {
                    eprintln!("unknown scale `{value}` (smoke|small|paper)");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--threads" => {
                threads = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--records-out" => {
                records_out = Some(
                    iter.next()
                        .unwrap_or_else(|| {
                            eprintln!("--records-out needs a file path");
                            std::process::exit(2);
                        })
                        .clone(),
                );
            }
            "--format" => {
                let value = iter.next().unwrap_or_else(|| {
                    eprintln!("--format needs a value (json|binary)");
                    std::process::exit(2);
                });
                format = value.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--metrics-out" => {
                metrics_out = Some(
                    iter.next()
                        .unwrap_or_else(|| {
                            eprintln!("--metrics-out needs a file path");
                            std::process::exit(2);
                        })
                        .clone(),
                );
            }
            "--out-dir" => {
                out_dir = iter
                    .next()
                    .unwrap_or_else(|| {
                        eprintln!("--out-dir needs a directory path");
                        std::process::exit(2);
                    })
                    .clone();
            }
            "--checkpoint-out" => {
                checkpoint_out = Some(
                    iter.next()
                        .unwrap_or_else(|| {
                            eprintln!("--checkpoint-out needs a file path");
                            std::process::exit(2);
                        })
                        .clone(),
                );
            }
            "--checkpoint-every" => {
                checkpoint_every = iter.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--checkpoint-every needs an integer");
                    std::process::exit(2);
                });
            }
            "--resume-from" => {
                resume_from = Some(
                    iter.next()
                        .unwrap_or_else(|| {
                            eprintln!("--resume-from needs a file path");
                            std::process::exit(2);
                        })
                        .clone(),
                );
            }
            "--halt-after-windows" => {
                halt_after = Some(iter.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--halt-after-windows needs an integer");
                    std::process::exit(2);
                }));
            }
            "--io-faults" => {
                io_faults_from = Some(
                    iter.next()
                        .unwrap_or_else(|| {
                            eprintln!("--io-faults needs a file path");
                            std::process::exit(2);
                        })
                        .clone(),
                );
            }
            "--verbose" => verbose = true,
            "--fig3" => {
                artifacts.insert("fig3");
            }
            "--fig4" => {
                artifacts.insert("fig4");
            }
            "--fig5" => {
                artifacts.insert("fig5");
            }
            "--fig6" => {
                artifacts.insert("fig6");
            }
            "--table1" => {
                artifacts.insert("table1");
            }
            "--accel" => {
                artifacts.insert("accel");
            }
            "--keylife" => {
                artifacts.insert("keylife");
            }
            "--all" => {
                for a in ["fig3", "fig4", "fig5", "fig6", "table1", "accel", "keylife"] {
                    artifacts.insert(a);
                }
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    if artifacts.is_empty() {
        for a in ["fig3", "fig4", "fig5", "fig6", "table1", "accel", "keylife"] {
            artifacts.insert(a);
        }
    }
    if checkpoint_every > 0 && checkpoint_out.is_none() {
        eprintln!("--checkpoint-every needs --checkpoint-out FILE");
        std::process::exit(2);
    }
    if checkpoint_out.is_some() && checkpoint_every == 0 {
        checkpoint_every = 1;
    }
    if resume_from.is_some() && records_out.is_none() {
        eprintln!(
            "--resume-from needs --records-out FILE (the already-measured head of the \
             record stream is salvaged from it to rebuild the assessment)"
        );
        std::process::exit(2);
    }

    // Figures 3 and 4 and the accelerated comparison need no campaign.
    if artifacts.contains("fig3") {
        fig3();
    }
    if artifacts.contains("fig4") {
        fig4(seed, &out_dir);
    }
    if artifacts.contains("accel") {
        accel();
    }

    // Instruments are created whenever anything will consume them; the
    // pipeline output is identical either way.
    let obs = (metrics_out.is_some() || verbose).then(Instruments::new);
    let io_policy = io_faults_from.as_ref().map(|path| {
        let plan = IoFaultPlan::load(Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot load I/O fault plan {path}: {e}");
            std::process::exit(1);
        });
        let policy = IoPolicy::new(plan, 0);
        match &obs {
            Some(ins) => policy.instruments(ins),
            None => policy,
        }
    });

    if ["fig5", "fig6", "table1"]
        .iter()
        .any(|a| artifacts.contains(a))
    {
        eprintln!("running campaign at {scale:?} scale (seed {seed}, {threads} threads)…");
        let heartbeat = if verbose {
            obs.as_ref().map(|ins| {
                let total = campaign_total_cycles(&scale.campaign_config());
                metrics::spawn_heartbeat(ins, metrics::campaign_spec(total))
            })
        } else {
            None
        };
        // Streamed: records fold into the assessment as the campaign emits
        // them, so even paper scale never holds the dataset in memory.
        // Validate a resume (config hash, state consistency) BEFORE
        // touching the output file, so a refused resume leaves the partial
        // output alone.
        let resume_state = resume_from.as_ref().map(|ckpt| {
            checkpoint::read_file(Path::new(ckpt)).unwrap_or_else(|e| {
                eprintln!("cannot resume from {ckpt}: {e}");
                std::process::exit(1);
            })
        });
        let needs_campaign_plumbing = resume_state.is_some()
            || checkpoint_out.is_some()
            || halt_after.is_some()
            || records_out.is_some();
        let assessment = if needs_campaign_plumbing {
            let path = records_out.as_deref();
            let mut campaign = match &resume_state {
                Some(state) => {
                    let campaign = Campaign::resume(scale.campaign_config(), seed, state)
                        .unwrap_or_else(|e| {
                            eprintln!(
                                "cannot resume from {}: {e}",
                                resume_from.as_deref().unwrap_or_default()
                            );
                            std::process::exit(1);
                        });
                    eprintln!(
                        "resuming at window {} with {} records already on disk",
                        state.next_window, state.summary.records
                    );
                    campaign
                }
                None => Campaign::new(scale.campaign_config(), seed),
            }
            .threads(threads);
            if let Some(ins) = &obs {
                campaign = campaign.instruments(ins);
            }
            if let Some(ckpt) = &checkpoint_out {
                campaign = campaign.checkpoints(checkpoint_every, ckpt);
            }
            if let Some(policy) = &io_policy {
                campaign = campaign.io_policy(policy.clone());
            }
            if let Some(n) = halt_after {
                campaign = campaign.halt_after_windows(n);
            }
            let mut accumulator = WindowAccumulator::new(scale.protocol());
            if let Some(ins) = &obs {
                accumulator.attach_instruments(ins);
            }
            match path {
                Some(path) => {
                    let declared = u32::try_from(scale.campaign_config().read_bits).unwrap_or(0);
                    // On resume, the salvage pass replays the head of the
                    // stream into the accumulator, so the assessment sees
                    // the complete campaign despite the interruption.
                    let mut sink = match &resume_state {
                        Some(state) => reopen_for_resume_with(
                            path,
                            format,
                            declared,
                            state.summary.records,
                            Some(&mut accumulator),
                            io_policy.clone(),
                        ),
                        None => FormatSink::create_with(path, format, declared, io_policy.clone()),
                    }
                    .unwrap_or_else(|e| {
                        eprintln!("cannot open {path}: {e}");
                        std::process::exit(1);
                    });
                    {
                        let mut tee = TeeSink::new(&mut accumulator, &mut sink);
                        campaign.run(&mut tee).unwrap_or_else(|e| {
                            eprintln!("recording records to {path} failed: {e}");
                            std::process::exit(1);
                        });
                    }
                    let written = sink.written();
                    if let Err(e) = sink.finish() {
                        eprintln!("flush of {path} failed: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("wrote {written} records to {path} ({format} format)");
                }
                None => {
                    campaign
                        .run(&mut accumulator)
                        .expect("accumulator sink cannot fail");
                }
            }
            if campaign.completed() {
                Some(
                    accumulator
                        .finish()
                        .expect("built-in scales produce assessable datasets"),
                )
            } else {
                let summary = campaign.summary_so_far();
                eprintln!(
                    "halted after {} windows ({} records so far); continue with \
                     --resume-from {} to finish and print the tables",
                    summary.windows,
                    summary.records,
                    checkpoint_out.as_deref().unwrap_or("<checkpoint>")
                );
                None
            }
        } else {
            Some(run_assessment_streaming_with(
                scale,
                seed,
                threads,
                obs.as_ref(),
            ))
        };
        drop(heartbeat);
        let Some(assessment) = assessment else {
            if let (Some(path), Some(ins)) = (&metrics_out, &obs) {
                if let Err(e) = metrics::write_metrics(path, ins) {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
            }
            return;
        };
        if artifacts.contains("fig5") {
            println!("\n=== Fig. 5: fractional HD / HW distributions at the start ===\n");
            println!("{}", report::fig5_text(assessment.initial_quality(), 48));
        }
        if artifacts.contains("fig6") {
            println!("\n=== Fig. 6: development of qualities over the aging test ===\n");
            for series in [
                Series::Wchd,
                Series::Fhw,
                Series::NoiseEntropy,
                Series::PufEntropy,
            ] {
                println!("{}", report::fig6_text(&assessment, series, 40));
            }
        }
        if artifacts.contains("table1") {
            println!("\n=== Table I ===\n");
            println!("{}", assessment.table1().render());
        }
    }

    if artifacts.contains("keylife") {
        // A second deterministic pass over the same campaign (same seed →
        // identical records), streamed into the key-lifetime workload: the
        // enrolled keys must survive every later month.
        eprintln!("replaying campaign through the key-lifetime workload…");
        let life = run_keylife_streaming_with(scale, seed, threads, seed, obs.as_ref());
        println!("\n=== key-lifetime workload (enroll month 0, replay the rest) ===\n");
        print!("{}", life.render_table());
    }

    if let (Some(path), Some(ins)) = (&metrics_out, &obs) {
        match metrics::write_metrics(path, ins) {
            Ok(()) => eprintln!("wrote metrics snapshot to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn fig3() {
    println!("=== Fig. 3: power waveforms (5.4 s period, 3.8 s on) ===\n");
    let l0 = PowerWaveform::paper_layer(0);
    let l1 = PowerWaveform::paper_layer(1);
    let dt = 0.15;
    for (name, w) in [("S3/S4  (layer 0)", l0), ("S19/S20 (layer 1)", l1)] {
        let trace: String = w
            .trace(0.0, 16.2, dt)
            .iter()
            .map(|&(_, on)| if on { '▔' } else { '▁' })
            .collect();
        println!("{name}: {trace}");
    }
    println!(
        "\nperiod {:.1} s, on {:.1} s, off {:.1} s, duty {:.3}",
        l0.period_s(),
        l0.on_s(),
        l0.off_s(),
        l0.duty()
    );
}

fn fig4(seed: u64, out_dir: &str) {
    println!("\n=== Fig. 4: start-up pattern of board S0 (1 KB) ===\n");
    let mut rng = StdRng::seed_from_u64(seed);
    let profile = TechnologyProfile::atmega32u4();
    let sram = SramArray::generate(&profile, 8 * 1024, &mut rng);
    let pattern = sram.power_up(&Environment::nominal(&profile), &mut rng);
    // Print a 64-bit-wide excerpt (the first 2 KiBit) to keep stdout sane.
    let excerpt = pattern.prefix(2048);
    println!("{}", visualize::ascii_raster(&excerpt, 64));
    println!(
        "fractional Hamming weight of the full pattern: {:.4}",
        pattern.fractional_hamming_weight()
    );
    let image = visualize::pgm_image(&pattern, 128);
    let target = Path::new(out_dir).join("fig4_startup_pattern.pgm");
    let write = std::fs::create_dir_all(out_dir).and_then(|()| std::fs::write(&target, &image));
    match write {
        Ok(()) => println!("wrote {} ({} bytes)", target.display(), image.len()),
        Err(e) => eprintln!("could not write {}: {e}", target.display()),
    }
}

fn accel() {
    println!("\n=== Nominal vs accelerated aging (paper §IV-D / §V) ===\n");
    let (nominal, accelerated_study) = accelerated::comparison(24);
    for study in [&nominal, &accelerated_study] {
        println!(
            "{:<24} WCHD {:.2}% → {:.2}%  ({:+.2}%/month compound)",
            study.label,
            study.start_wchd() * 100.0,
            study.end_wchd() * 100.0,
            study.monthly_wchd_rate * 100.0,
        );
    }
    println!(
        "\naccelerated/nominal monthly-rate ratio: {:.2}× (paper: 1.28/0.74 ≈ 1.73×)",
        accelerated_study.monthly_wchd_rate / nominal.monthly_wchd_rate
    );
}
