//! Regenerates every table and figure of the paper.
//!
//! ```text
//! repro [--scale smoke|small|paper] [--seed N] [--threads N] \
//!       [--records-out FILE] [--format json|binary] \
//!       [--metrics-out FILE] [--verbose] \
//!       [--fig3] [--fig4] [--fig5] [--fig6] [--table1] [--accel] [--all]
//! ```
//!
//! Artifacts are printed to stdout; `--fig4` additionally writes
//! `fig4_startup_pattern.pgm` to the working directory. `--records-out`
//! tees the campaign's records to a file in the chosen `--format` (default
//! json) while the same pass feeds the assessment — re-assessing that file
//! reproduces the printed tables. `--metrics-out` dumps the `pufobs`
//! pipeline snapshot (campaign and accumulator counters) as JSON after the
//! run; `--verbose` prints a once-per-second progress heartbeat to stderr.
//! None of these change the printed artifacts by a byte.

use pufassess::report::{self, Series};
use pufassess::visualize;
use pufbench::{
    campaign_total_cycles, default_threads, metrics, run_assessment_streaming_recording,
    run_assessment_streaming_with, FormatSink, Scale,
};
use pufobs::Instruments;
use puftestbed::store::RecordFormat;
use puftestbed::PowerWaveform;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sramaging::accelerated;
use sramcell::{Environment, SramArray, TechnologyProfile};
use std::collections::BTreeSet;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut seed = 2017;
    let mut threads = default_threads();
    let mut records_out: Option<String> = None;
    let mut format = RecordFormat::Json;
    let mut metrics_out: Option<String> = None;
    let mut verbose = false;
    let mut artifacts: BTreeSet<&'static str> = BTreeSet::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let value = iter.next().expect("--scale needs a value");
                scale = Scale::parse(value).unwrap_or_else(|| {
                    eprintln!("unknown scale `{value}` (smoke|small|paper)");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed needs an integer");
            }
            "--threads" => {
                threads = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .unwrap_or_else(|| {
                        eprintln!("--threads needs a positive integer");
                        std::process::exit(2);
                    });
            }
            "--records-out" => {
                records_out = Some(
                    iter.next()
                        .unwrap_or_else(|| {
                            eprintln!("--records-out needs a file path");
                            std::process::exit(2);
                        })
                        .clone(),
                );
            }
            "--format" => {
                let value = iter.next().unwrap_or_else(|| {
                    eprintln!("--format needs a value (json|binary)");
                    std::process::exit(2);
                });
                format = value.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--metrics-out" => {
                metrics_out = Some(
                    iter.next()
                        .unwrap_or_else(|| {
                            eprintln!("--metrics-out needs a file path");
                            std::process::exit(2);
                        })
                        .clone(),
                );
            }
            "--verbose" => verbose = true,
            "--fig3" => {
                artifacts.insert("fig3");
            }
            "--fig4" => {
                artifacts.insert("fig4");
            }
            "--fig5" => {
                artifacts.insert("fig5");
            }
            "--fig6" => {
                artifacts.insert("fig6");
            }
            "--table1" => {
                artifacts.insert("table1");
            }
            "--accel" => {
                artifacts.insert("accel");
            }
            "--all" => {
                for a in ["fig3", "fig4", "fig5", "fig6", "table1", "accel"] {
                    artifacts.insert(a);
                }
            }
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }
    if artifacts.is_empty() {
        for a in ["fig3", "fig4", "fig5", "fig6", "table1", "accel"] {
            artifacts.insert(a);
        }
    }

    // Figures 3 and 4 and the accelerated comparison need no campaign.
    if artifacts.contains("fig3") {
        fig3();
    }
    if artifacts.contains("fig4") {
        fig4(seed);
    }
    if artifacts.contains("accel") {
        accel();
    }

    // Instruments are created whenever anything will consume them; the
    // pipeline output is identical either way.
    let obs = (metrics_out.is_some() || verbose).then(Instruments::new);

    if ["fig5", "fig6", "table1"]
        .iter()
        .any(|a| artifacts.contains(a))
    {
        eprintln!("running campaign at {scale:?} scale (seed {seed}, {threads} threads)…");
        let heartbeat = if verbose {
            obs.as_ref().map(|ins| {
                let total = campaign_total_cycles(&scale.campaign_config());
                metrics::spawn_heartbeat(ins, metrics::campaign_spec(total))
            })
        } else {
            None
        };
        // Streamed: records fold into the assessment as the campaign emits
        // them, so even paper scale never holds the dataset in memory.
        let assessment = match &records_out {
            Some(path) => {
                let declared = u32::try_from(scale.campaign_config().read_bits).unwrap_or(0);
                let mut sink = FormatSink::create(path, format, declared).unwrap_or_else(|e| {
                    eprintln!("cannot create {path}: {e}");
                    std::process::exit(1);
                });
                let assessment = run_assessment_streaming_recording(
                    scale,
                    seed,
                    threads,
                    obs.as_ref(),
                    &mut sink,
                )
                .unwrap_or_else(|e| {
                    eprintln!("recording records to {path} failed: {e}");
                    std::process::exit(1);
                });
                let written = sink.written();
                if let Err(e) = sink.finish() {
                    eprintln!("flush of {path} failed: {e}");
                    std::process::exit(1);
                }
                eprintln!("wrote {written} records to {path} ({format} format)");
                assessment
            }
            None => run_assessment_streaming_with(scale, seed, threads, obs.as_ref()),
        };
        drop(heartbeat);
        if artifacts.contains("fig5") {
            println!("\n=== Fig. 5: fractional HD / HW distributions at the start ===\n");
            println!("{}", report::fig5_text(assessment.initial_quality(), 48));
        }
        if artifacts.contains("fig6") {
            println!("\n=== Fig. 6: development of qualities over the aging test ===\n");
            for series in [
                Series::Wchd,
                Series::Fhw,
                Series::NoiseEntropy,
                Series::PufEntropy,
            ] {
                println!("{}", report::fig6_text(&assessment, series, 40));
            }
        }
        if artifacts.contains("table1") {
            println!("\n=== Table I ===\n");
            println!("{}", assessment.table1().render());
        }
    }

    if let (Some(path), Some(ins)) = (&metrics_out, &obs) {
        match metrics::write_metrics(path, ins) {
            Ok(()) => eprintln!("wrote metrics snapshot to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn fig3() {
    println!("=== Fig. 3: power waveforms (5.4 s period, 3.8 s on) ===\n");
    let l0 = PowerWaveform::paper_layer(0);
    let l1 = PowerWaveform::paper_layer(1);
    let dt = 0.15;
    for (name, w) in [("S3/S4  (layer 0)", l0), ("S19/S20 (layer 1)", l1)] {
        let trace: String = w
            .trace(0.0, 16.2, dt)
            .iter()
            .map(|&(_, on)| if on { '▔' } else { '▁' })
            .collect();
        println!("{name}: {trace}");
    }
    println!(
        "\nperiod {:.1} s, on {:.1} s, off {:.1} s, duty {:.3}",
        l0.period_s(),
        l0.on_s(),
        l0.off_s(),
        l0.duty()
    );
}

fn fig4(seed: u64) {
    println!("\n=== Fig. 4: start-up pattern of board S0 (1 KB) ===\n");
    let mut rng = StdRng::seed_from_u64(seed);
    let profile = TechnologyProfile::atmega32u4();
    let sram = SramArray::generate(&profile, 8 * 1024, &mut rng);
    let pattern = sram.power_up(&Environment::nominal(&profile), &mut rng);
    // Print a 64-bit-wide excerpt (the first 2 KiBit) to keep stdout sane.
    let excerpt = pattern.prefix(2048);
    println!("{}", visualize::ascii_raster(&excerpt, 64));
    println!(
        "fractional Hamming weight of the full pattern: {:.4}",
        pattern.fractional_hamming_weight()
    );
    let image = visualize::pgm_image(&pattern, 128);
    match std::fs::write("fig4_startup_pattern.pgm", &image) {
        Ok(()) => println!("wrote fig4_startup_pattern.pgm ({} bytes)", image.len()),
        Err(e) => eprintln!("could not write fig4_startup_pattern.pgm: {e}"),
    }
}

fn accel() {
    println!("\n=== Nominal vs accelerated aging (paper §IV-D / §V) ===\n");
    let (nominal, accelerated_study) = accelerated::comparison(24);
    for study in [&nominal, &accelerated_study] {
        println!(
            "{:<24} WCHD {:.2}% → {:.2}%  ({:+.2}%/month compound)",
            study.label,
            study.start_wchd() * 100.0,
            study.end_wchd() * 100.0,
            study.monthly_wchd_rate * 100.0,
        );
    }
    println!(
        "\naccelerated/nominal monthly-rate ratio: {:.2}× (paper: 1.28/0.74 ≈ 1.73×)",
        accelerated_study.monthly_wchd_rate / nominal.monthly_wchd_rate
    );
}
