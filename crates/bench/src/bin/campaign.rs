//! Runs a measurement campaign and streams its records to a file — the
//! simulated counterpart of the paper's rig writing to the Raspberry Pi
//! database.
//!
//! ```text
//! campaign --out records [--format json|binary] [--boards 16] [--months 24]
//!          [--reads 1000] [--read-bits 8192] [--seed 2017] [--nack-rate 0.0]
//!          [--threads N] [--metrics-out FILE] [--verbose]
//!          [--checkpoint-out FILE] [--checkpoint-every N]
//!          [--resume-from FILE] [--halt-after-windows N]
//!          [--faults FILE] [--max-retries N]
//! ```
//!
//! `--format json` (the default) writes the paper's JSON lines; `--format
//! binary` writes the compact `pufrec/1` store. Pair with the `assess`
//! binary to analyse the file (it detects the format itself); the
//! assessment is byte-identical either way. `--metrics-out` dumps the
//! `pufobs` campaign counters as JSON after the run; `--verbose` prints a
//! once-per-second progress heartbeat (with ETA) to stderr. Neither changes
//! the record file by a byte.
//!
//! `--checkpoint-out` writes a `pufchk/1` checkpoint (atomically) after
//! every `--checkpoint-every` windows (default 1). `--resume-from`
//! continues an interrupted campaign from its checkpoint — the flags
//! describing the campaign must match the original run (the checkpoint's
//! config hash is verified) — and produces a record file byte-identical to
//! the uninterrupted run. `--halt-after-windows` stops the run early while
//! keeping it resumable (an in-process interruption drill).
//!
//! `--faults FILE` loads a JSON fault plan (brownouts, I2C bursts, stuck
//! cells, clock skew — see `puftestbed::faults`) and injects it
//! deterministically: the same seed and plan produce byte-identical records
//! for any `--threads`, and through checkpoint/resume. `--max-retries N`
//! bounds the transport retry budget before a read is dropped as a gap.
//!
//! `--io-faults FILE` loads a *storage* fault plan (torn writes, short
//! reads, ENOSPC, failed fsync/rename — see `puftestbed::store::iofault`)
//! and injects it deterministically into the output, checkpoint, and
//! resume-salvage I/O paths. A fired fault fails the run like a real disk
//! error would; the partial output and checkpoints stay on disk for the
//! supervisor to resume from. `--io-incarnation N` salts the schedule (the
//! supervisor passes its restart count, so each retry sees fresh faults);
//! `--checkpoint-keep K` retains the last K checkpoint generations
//! (`FILE`, `FILE.1`, …) so a checkpoint torn mid-write still leaves an
//! older intact generation to fall back to. Without `--io-faults` every
//! byte written is identical to a build without the fault layer.

use pufbench::{campaign_total_cycles, metrics, reopen_for_resume_with, FormatSink};
use pufobs::Instruments;
use puftestbed::store::{checkpoint, IoFaultPlan, IoPolicy, RecordFormat};
use puftestbed::{Campaign, CampaignConfig, FaultPlan};
use std::path::Path;
use std::process::exit;

fn main() {
    let mut config = CampaignConfig::default();
    let mut out: Option<String> = None;
    let mut format = RecordFormat::Json;
    let mut seed = 2017u64;
    let mut threads = pufbench::default_threads();
    let mut metrics_out: Option<String> = None;
    let mut verbose = false;
    let mut checkpoint_out: Option<String> = None;
    let mut checkpoint_every: u32 = 0;
    let mut resume_from: Option<String> = None;
    let mut halt_after: Option<u32> = None;
    let mut faults_from: Option<String> = None;
    let mut io_faults_from: Option<String> = None;
    let mut io_incarnation = 0u64;
    let mut checkpoint_keep = 1u32;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || {
            iter.next().unwrap_or_else(|| {
                eprintln!("{arg} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--out" => out = Some(value().clone()),
            "--format" => format = parse(value(), "--format"),
            "--boards" => config.boards = parse(value(), "--boards"),
            "--months" => config.months = parse(value(), "--months"),
            "--reads" => config.reads_per_window = parse(value(), "--reads"),
            "--read-bits" => {
                config.read_bits = parse(value(), "--read-bits");
                config.sram_bits = config.sram_bits.max(config.read_bits);
            }
            "--seed" => seed = parse(value(), "--seed"),
            "--nack-rate" => config.i2c_nack_rate = parse(value(), "--nack-rate"),
            "--threads" => {
                threads = parse(value(), "--threads");
                if threads == 0 {
                    eprintln!("--threads must be positive");
                    exit(2);
                }
            }
            "--metrics-out" => metrics_out = Some(value().clone()),
            "--verbose" => verbose = true,
            "--checkpoint-out" => checkpoint_out = Some(value().clone()),
            "--checkpoint-every" => checkpoint_every = parse(value(), "--checkpoint-every"),
            "--resume-from" => resume_from = Some(value().clone()),
            "--halt-after-windows" => halt_after = Some(parse(value(), "--halt-after-windows")),
            "--faults" => faults_from = Some(value().clone()),
            "--max-retries" => config.i2c_retries = parse(value(), "--max-retries"),
            "--io-faults" => io_faults_from = Some(value().clone()),
            "--io-incarnation" => io_incarnation = parse(value(), "--io-incarnation"),
            "--checkpoint-keep" => {
                checkpoint_keep = parse(value(), "--checkpoint-keep");
                if checkpoint_keep == 0 {
                    eprintln!("--checkpoint-keep must be positive");
                    exit(2);
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: campaign --out FILE [--format json|binary] [--boards N] \
                     [--months N] [--reads N] [--read-bits N] [--seed N] [--nack-rate P] \
                     [--threads N] [--metrics-out FILE] [--verbose] \
                     [--checkpoint-out FILE] [--checkpoint-every N] [--checkpoint-keep K] \
                     [--resume-from FILE] [--halt-after-windows N] \
                     [--faults FILE] [--max-retries N] \
                     [--io-faults FILE] [--io-incarnation N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                exit(2);
            }
        }
    }
    let Some(out) = out else {
        eprintln!("--out FILE is required (try --help)");
        exit(2);
    };
    if checkpoint_every > 0 && checkpoint_out.is_none() {
        eprintln!("--checkpoint-every needs --checkpoint-out FILE");
        exit(2);
    }
    if checkpoint_out.is_some() && checkpoint_every == 0 {
        checkpoint_every = 1;
    }
    // The fault plan is part of the campaign's identity (its hash feeds the
    // checkpoint config hash), so load it before any resume validation.
    if let Some(path) = &faults_from {
        config.faults = FaultPlan::load(Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot load fault plan {path}: {e}");
            exit(1);
        });
    }
    let has_faults = !config.faults.is_empty();
    // Storage faults are not part of the campaign's identity: they change
    // when I/O *fails*, never what gets written, so the plan stays outside
    // the checkpoint config hash and a faulted run resumes into a clean one
    // (and vice versa) freely.
    let obs = (metrics_out.is_some() || verbose).then(Instruments::new);
    let io_policy = io_faults_from.as_ref().map(|path| {
        let plan = IoFaultPlan::load(Path::new(path)).unwrap_or_else(|e| {
            eprintln!("cannot load I/O fault plan {path}: {e}");
            exit(1);
        });
        let policy = IoPolicy::new(plan, io_incarnation);
        match &obs {
            Some(ins) => policy.instruments(ins),
            None => policy,
        }
    });

    eprintln!(
        "campaign: {} boards × {} months × {} reads/window × {} bits → {out} \
         ({format} format, {threads} threads)",
        config.boards, config.months, config.reads_per_window, config.read_bits
    );
    let declared_bits = u32::try_from(config.read_bits).unwrap_or(0);
    let total_cycles = campaign_total_cycles(&config);

    // Validate the resume (config hash, state consistency) BEFORE touching
    // the output file, so a refused resume leaves the partial output alone.
    let resume_state = resume_from.as_ref().map(|ckpt| {
        checkpoint::read_file(Path::new(ckpt)).unwrap_or_else(|e| {
            eprintln!("cannot resume from {ckpt}: {e}");
            exit(1);
        })
    });
    let mut campaign = match &resume_state {
        Some(state) => {
            let campaign = Campaign::resume(config, seed, state).unwrap_or_else(|e| {
                eprintln!(
                    "cannot resume from {}: {e}",
                    resume_from.as_deref().unwrap_or_default()
                );
                exit(1);
            });
            eprintln!(
                "resuming at window {} with {} records already on disk",
                state.next_window, state.summary.records
            );
            campaign
        }
        None => Campaign::new(config, seed),
    }
    .threads(threads);
    let mut sink = match &resume_state {
        Some(state) => reopen_for_resume_with(
            &out,
            format,
            declared_bits,
            state.summary.records,
            None,
            io_policy.clone(),
        ),
        None => FormatSink::create_with(&out, format, declared_bits, io_policy.clone()),
    }
    .unwrap_or_else(|e| {
        eprintln!("cannot open {out}: {e}");
        write_metrics_snapshot(&metrics_out, &obs);
        exit(1);
    });
    if let Some(ins) = &obs {
        campaign = campaign.instruments(ins);
    }
    if let Some(policy) = &io_policy {
        campaign = campaign.io_policy(policy.clone());
    }
    if let Some(ckpt) = &checkpoint_out {
        campaign = campaign
            .checkpoints(checkpoint_every, ckpt)
            .checkpoint_keep(checkpoint_keep);
    }
    if let Some(n) = halt_after {
        campaign = campaign.halt_after_windows(n);
    }
    let heartbeat = verbose.then(|| {
        let ins = obs.as_ref().expect("verbose implies instruments");
        metrics::spawn_heartbeat(ins, metrics::campaign_spec(total_cycles))
    });
    // Failure paths still write the metrics snapshot: a supervised child
    // killed by an injected fault must leave its `io.*` counters behind
    // for the conservation checks, or the faults it absorbed disappear
    // from the books.
    let summary = match campaign.run(&mut sink) {
        Ok(summary) => summary,
        Err(e) => {
            drop(heartbeat);
            eprintln!("campaign failed: {e}");
            write_metrics_snapshot(&metrics_out, &obs);
            exit(1);
        }
    };
    drop(heartbeat);
    if let Err(e) = sink.finish() {
        eprintln!("flush failed: {e}");
        write_metrics_snapshot(&metrics_out, &obs);
        exit(1);
    }
    if has_faults {
        let tally = campaign.fault_tally();
        eprintln!(
            "faults: {} browned-out windows ({} missed power-ups), \
             {} injected NACKs, {} injected corruptions, {} stuck forcings, \
             {} ms simulated backoff, {} gap records",
            tally.browned_out_windows,
            tally.missed_power_ups,
            tally.injected_nacks,
            tally.injected_corruptions,
            tally.stuck_cells_forced,
            tally.retry_backoff_ms,
            campaign.gap_records().len()
        );
    }
    if campaign.completed() {
        eprintln!(
            "done: {} records over {} windows ({} transport retries, {} dropped)",
            summary.records, summary.windows, summary.retries, summary.dropped
        );
    } else {
        eprintln!(
            "halted after {} windows ({} records so far); continue with \
             --resume-from {}",
            summary.windows,
            summary.records,
            checkpoint_out.as_deref().unwrap_or("<checkpoint>")
        );
    }
    if let (Some(path), Some(ins)) = (&metrics_out, &obs) {
        match metrics::write_metrics(path, ins) {
            Ok(()) => eprintln!("wrote metrics snapshot to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            }
        }
    }
}

/// Best-effort metrics dump on the failure paths (the success path reports
/// its own errors loudly).
fn write_metrics_snapshot(metrics_out: &Option<String>, obs: &Option<Instruments>) {
    if let (Some(path), Some(ins)) = (metrics_out, obs) {
        match metrics::write_metrics(path, ins) {
            Ok(()) => eprintln!("wrote metrics snapshot to {path}"),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("invalid value `{value}` for {flag}");
        exit(2);
    })
}
