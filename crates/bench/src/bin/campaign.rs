//! Runs a measurement campaign and streams its records to a file — the
//! simulated counterpart of the paper's rig writing to the Raspberry Pi
//! database.
//!
//! ```text
//! campaign --out records [--format json|binary] [--boards 16] [--months 24]
//!          [--reads 1000] [--read-bits 8192] [--seed 2017] [--nack-rate 0.0]
//!          [--threads N] [--metrics-out FILE] [--verbose]
//! ```
//!
//! `--format json` (the default) writes the paper's JSON lines; `--format
//! binary` writes the compact `pufrec/1` store. Pair with the `assess`
//! binary to analyse the file (it detects the format itself); the
//! assessment is byte-identical either way. `--metrics-out` dumps the
//! `pufobs` campaign counters as JSON after the run; `--verbose` prints a
//! once-per-second progress heartbeat (with ETA) to stderr. Neither changes
//! the record file by a byte.

use pufbench::{campaign_total_cycles, metrics, FormatSink};
use pufobs::Instruments;
use puftestbed::store::RecordFormat;
use puftestbed::{Campaign, CampaignConfig};
use std::process::exit;

fn main() {
    let mut config = CampaignConfig::default();
    let mut out: Option<String> = None;
    let mut format = RecordFormat::Json;
    let mut seed = 2017u64;
    let mut threads = pufbench::default_threads();
    let mut metrics_out: Option<String> = None;
    let mut verbose = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || {
            iter.next().unwrap_or_else(|| {
                eprintln!("{arg} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--out" => out = Some(value().clone()),
            "--format" => format = parse(value(), "--format"),
            "--boards" => config.boards = parse(value(), "--boards"),
            "--months" => config.months = parse(value(), "--months"),
            "--reads" => config.reads_per_window = parse(value(), "--reads"),
            "--read-bits" => {
                config.read_bits = parse(value(), "--read-bits");
                config.sram_bits = config.sram_bits.max(config.read_bits);
            }
            "--seed" => seed = parse(value(), "--seed"),
            "--nack-rate" => config.i2c_nack_rate = parse(value(), "--nack-rate"),
            "--threads" => {
                threads = parse(value(), "--threads");
                if threads == 0 {
                    eprintln!("--threads must be positive");
                    exit(2);
                }
            }
            "--metrics-out" => metrics_out = Some(value().clone()),
            "--verbose" => verbose = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: campaign --out FILE [--format json|binary] [--boards N] \
                     [--months N] [--reads N] [--read-bits N] [--seed N] [--nack-rate P] \
                     [--threads N] [--metrics-out FILE] [--verbose]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                exit(2);
            }
        }
    }
    let Some(out) = out else {
        eprintln!("--out FILE is required (try --help)");
        exit(2);
    };

    eprintln!(
        "campaign: {} boards × {} months × {} reads/window × {} bits → {out} \
         ({format} format, {threads} threads)",
        config.boards, config.months, config.reads_per_window, config.read_bits
    );
    let declared_bits = u32::try_from(config.read_bits).unwrap_or(0);
    let mut sink = FormatSink::create(&out, format, declared_bits).unwrap_or_else(|e| {
        eprintln!("cannot create {out}: {e}");
        exit(1);
    });
    let obs = (metrics_out.is_some() || verbose).then(Instruments::new);
    let total_cycles = campaign_total_cycles(&config);
    let mut campaign = Campaign::new(config, seed).threads(threads);
    if let Some(ins) = &obs {
        campaign = campaign.instruments(ins);
    }
    let heartbeat = verbose.then(|| {
        let ins = obs.as_ref().expect("verbose implies instruments");
        metrics::spawn_heartbeat(ins, metrics::campaign_spec(total_cycles))
    });
    let summary = campaign.run(&mut sink).unwrap_or_else(|e| {
        eprintln!("campaign failed: {e}");
        exit(1);
    });
    drop(heartbeat);
    if let Err(e) = sink.finish() {
        eprintln!("flush failed: {e}");
        exit(1);
    }
    eprintln!(
        "done: {} records over {} windows ({} transport retries, {} dropped)",
        summary.records, summary.windows, summary.retries, summary.dropped
    );
    if let (Some(path), Some(ins)) = (&metrics_out, &obs) {
        match metrics::write_metrics(path, ins) {
            Ok(()) => eprintln!("wrote metrics snapshot to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            }
        }
    }
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("invalid value `{value}` for {flag}");
        exit(2);
    })
}
