//! Analyses a JSON-lines record file with the paper's evaluation protocol:
//! prints Table I, the Fig. 6 development summaries, and the fitted
//! hidden-variable model of each device.
//!
//! ```text
//! assess --in records.jsonl [--reads 1000] [--eval-day 8] [--csv PREFIX]
//!        [--threads N]
//! ```

use pufassess::monthly::{select_windows, EvaluationProtocol};
use pufassess::report::{self, Series};
use pufassess::{fit, Assessment};
use puftestbed::store::Record;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::process::exit;

fn main() {
    let mut input: Option<String> = None;
    let mut csv_prefix: Option<String> = None;
    let mut protocol = EvaluationProtocol::default();
    let mut threads = pufbench::default_threads();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || {
            iter.next().unwrap_or_else(|| {
                eprintln!("{arg} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--in" => input = Some(value().clone()),
            "--reads" => protocol.reads_per_window = parse(value(), "--reads"),
            "--eval-day" => protocol.eval_day = parse(value(), "--eval-day"),
            "--csv" => csv_prefix = Some(value().clone()),
            "--threads" => {
                threads = parse(value(), "--threads");
                if threads == 0 {
                    eprintln!("--threads must be positive");
                    exit(2);
                }
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: assess --in FILE [--reads N] [--eval-day D] [--csv PREFIX] \
                     [--threads N]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                exit(2);
            }
        }
    }
    let Some(input) = input else {
        eprintln!("--in FILE is required (try --help)");
        exit(2);
    };

    let file = File::open(&input).unwrap_or_else(|e| {
        eprintln!("cannot open {input}: {e}");
        exit(1);
    });
    let lines: Vec<String> = BufReader::new(file)
        .lines()
        .collect::<Result<_, _>>()
        .unwrap_or_else(|e| {
            eprintln!("cannot read {input}: {e}");
            exit(1);
        });
    let (records, skipped) = parse_records(&lines, threads);
    eprintln!("loaded {} records ({skipped} skipped)", records.len());

    let assessment = Assessment::from_records(&records, &protocol).unwrap_or_else(|e| {
        eprintln!("assessment failed: {e}");
        exit(1);
    });

    println!("=== Table I ===\n\n{}", assessment.table1().render());

    println!("=== development summaries ===\n");
    for series in [Series::Wchd, Series::NoiseEntropy, Series::StableRatio] {
        println!("{}", report::fig6_text(&assessment, series, 32));
    }

    println!("=== fitted hidden-variable model per device (month 0) ===\n");
    let windows = select_windows(&records, &protocol);
    let first_month = windows
        .iter()
        .map(|w| w.year_month)
        .min()
        .expect("non-empty assessment");
    println!(
        "{:<8} {:>10} {:>10} {:>12}",
        "device", "mu", "sigma", "pred. WCHD"
    );
    for window in windows.iter().filter(|w| w.year_month == first_month) {
        match fit::fit_population(&window.counter) {
            Ok(pop) => println!(
                "{:<8} {:>10.3} {:>10.3} {:>11.2}%",
                window.device.to_string(),
                pop.mu,
                pop.sigma,
                pop.expected_wchd() * 100.0
            ),
            Err(e) => println!("{:<8} unfittable: {e}", window.device.to_string()),
        }
    }

    if let Some(prefix) = csv_prefix {
        let devices = format!("{prefix}_devices.csv");
        let aggregates = format!("{prefix}_aggregates.csv");
        std::fs::write(&devices, report::device_series_csv(&assessment)).unwrap_or_else(|e| {
            eprintln!("cannot write {devices}: {e}");
            exit(1);
        });
        std::fs::write(&aggregates, report::aggregate_csv(&assessment)).unwrap_or_else(|e| {
            eprintln!("cannot write {aggregates}: {e}");
            exit(1);
        });
        eprintln!("wrote {devices} and {aggregates}");
    }
}

/// Parses JSON lines into records, sharding the lines across `threads`
/// workers. Line order is preserved (chunks are concatenated in order), so
/// the result is identical to a sequential parse; malformed and blank lines
/// are counted and reported exactly as before.
fn parse_records(lines: &[String], threads: usize) -> (Vec<Record>, u64) {
    let chunk_len = lines.len().div_ceil(threads.max(1)).max(1);
    let parse_chunk = |chunk: &[String]| {
        let mut records = Vec::with_capacity(chunk.len());
        let mut skipped = 0u64;
        for line in chunk {
            if line.trim().is_empty() {
                continue;
            }
            match Record::parse_json_line(line) {
                Ok(record) => records.push(record),
                Err(e) => {
                    skipped += 1;
                    eprintln!("skipping malformed line: {e}");
                }
            }
        }
        (records, skipped)
    };
    let outputs: Vec<(Vec<Record>, u64)> = if threads <= 1 || lines.len() <= chunk_len {
        lines.chunks(chunk_len.max(1)).map(parse_chunk).collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = lines
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(move || parse_chunk(chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("parser worker panicked"))
                .collect()
        })
    };
    let mut records = Vec::with_capacity(lines.len());
    let mut skipped = 0u64;
    for (mut chunk_records, chunk_skipped) in outputs {
        records.append(&mut chunk_records);
        skipped += chunk_skipped;
    }
    (records, skipped)
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("invalid value `{value}` for {flag}");
        exit(2);
    })
}
