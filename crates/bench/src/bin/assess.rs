//! Analyses a record file (JSON lines or `pufrec/1` binary) with the
//! paper's evaluation protocol: prints Table I, a coverage report (sparse
//! device-months from brownouts or retry exhaustion are flagged, not
//! averaged over silently), the Fig. 6 development summaries, and the
//! fitted hidden-variable model of each device.
//!
//! Records stream from disk through a parallel parser straight into the
//! bounded-memory window accumulator, so arbitrarily large record files
//! assess in memory proportional to `devices × months`, not file size.
//!
//! ```text
//! assess --in records [--format json|binary] [--reads 1000] [--eval-day 8]
//!        [--csv PREFIX] [--threads N] [--batch-lines N] [--metrics-out FILE]
//!        [--verbose]
//! ```
//!
//! The storage format is detected from the file's first bytes; `--format`
//! forces it instead. The assessment output is byte-identical across
//! formats. `--metrics-out` dumps the `pufobs` reader and accumulator
//! counters as JSON after the run; `--verbose` prints a once-per-second
//! progress heartbeat to stderr. Neither changes the assessment by a byte.
//!
//! `--resync BYTES` turns on bounded best-effort resynchronisation for
//! `pufrec/1` input (it implies `--format binary`): after a corrupt
//! region, the reader scans forward for the next CRC-valid frame instead
//! of stopping, skipping at most BYTES in total. Every dropped region is
//! reported on stderr with its exact offsets, counts toward the malformed
//! total, and the lost reads surface in the coverage report as missing or
//! underfilled device-months — degradation is graceful but never silent.
//! For exhaustive offline recovery use `convert --fsck --repair`.

use pufassess::fit;
use pufassess::monthly::EvaluationProtocol;
use pufassess::report::{self, Series};
use pufassess::streaming::WindowAccumulator;
use pufbench::metrics;
use pufobs::Instruments;
use puftestbed::store::{
    AnyRecordReader, BinaryRecordReader, ParallelRecordReader, RecordFormat, DEFAULT_BATCH_LINES,
};
use std::fs::File;
use std::io::BufReader;
use std::process::exit;

fn main() {
    let mut input: Option<String> = None;
    let mut format: Option<RecordFormat> = None;
    let mut csv_prefix: Option<String> = None;
    let mut protocol = EvaluationProtocol::default();
    let mut threads = pufbench::default_threads();
    let mut batch_lines = DEFAULT_BATCH_LINES;
    let mut metrics_out: Option<String> = None;
    let mut verbose = false;
    let mut resync: Option<u64> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || {
            iter.next().unwrap_or_else(|| {
                eprintln!("{arg} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--in" => input = Some(value().clone()),
            "--format" => format = Some(parse(value(), "--format")),
            "--reads" => protocol.reads_per_window = parse(value(), "--reads"),
            "--eval-day" => protocol.eval_day = parse(value(), "--eval-day"),
            "--csv" => csv_prefix = Some(value().clone()),
            "--threads" => {
                threads = parse(value(), "--threads");
                if threads == 0 {
                    eprintln!("--threads must be positive");
                    exit(2);
                }
            }
            "--batch-lines" => {
                batch_lines = parse(value(), "--batch-lines");
                if batch_lines == 0 {
                    eprintln!("--batch-lines must be positive");
                    exit(2);
                }
            }
            "--metrics-out" => metrics_out = Some(value().clone()),
            "--verbose" => verbose = true,
            "--resync" => resync = Some(parse(value(), "--resync")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: assess --in FILE [--format json|binary] [--reads N] \
                     [--eval-day D] [--csv PREFIX] [--threads N] [--batch-lines N] \
                     [--metrics-out FILE] [--verbose] [--resync BYTES]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                exit(2);
            }
        }
    }
    let Some(input) = input else {
        eprintln!("--in FILE is required (try --help)");
        exit(2);
    };
    if resync.is_some() && format == Some(RecordFormat::Json) {
        eprintln!("--resync re-locks on pufrec/1 frame CRCs; it cannot apply to --format json");
        exit(2);
    }

    let file = File::open(&input).unwrap_or_else(|e| {
        eprintln!("cannot open {input}: {e}");
        exit(1);
    });

    // Stream: reader thread → parser pool → accumulator. The file is never
    // held in memory; only per-(device, month) window state is.
    let obs = (metrics_out.is_some() || verbose).then(Instruments::new);
    let file = BufReader::new(file);
    // `--resync` implies binary: the file's own header may be part of the
    // damage, so format sniffing cannot be trusted to recognise it.
    let reader = match (resync, format) {
        (Some(budget), _) => AnyRecordReader::Binary(BinaryRecordReader::spawn_resync(
            file,
            threads,
            batch_lines,
            budget,
            obs.as_ref(),
        )),
        (None, None) => AnyRecordReader::open(file, threads, batch_lines, obs.as_ref())
            .unwrap_or_else(|e| {
                eprintln!("cannot read {input}: {e}");
                exit(1);
            }),
        (None, Some(RecordFormat::Json)) => AnyRecordReader::Json(
            ParallelRecordReader::spawn_with(file, threads, batch_lines, obs.as_ref()),
        ),
        (None, Some(RecordFormat::Binary)) => AnyRecordReader::Binary(
            BinaryRecordReader::spawn_with(file, threads, batch_lines, obs.as_ref()),
        ),
    };
    let mut accumulator = WindowAccumulator::new(protocol);
    if let Some(ins) = &obs {
        accumulator.attach_instruments(ins);
    }
    let heartbeat = verbose.then(|| {
        let ins = obs.as_ref().expect("verbose implies instruments");
        metrics::spawn_heartbeat(ins, metrics::assess_spec())
    });
    let mut malformed = 0u64;
    for item in reader {
        match item {
            Ok(record) => accumulator.push(&record),
            Err(e) if e.is_io() => {
                // A mid-file read failure is data loss, not a bad line:
                // fail loudly instead of assessing a silent prefix.
                eprintln!("reading {input} failed: {e}");
                exit(1);
            }
            Err(e) => {
                malformed += 1;
                eprintln!("skipping malformed record: {e}");
            }
        }
    }
    drop(heartbeat);
    eprintln!(
        "loaded {} records ({malformed} malformed, {} width-mismatched records skipped)",
        accumulator.records_seen(),
        accumulator.skipped_width_mismatch()
    );
    if let (Some(path), Some(ins)) = (&metrics_out, &obs) {
        match metrics::write_metrics(path, ins) {
            Ok(()) => eprintln!("wrote metrics snapshot to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            }
        }
    }

    let (assessment, windows) = accumulator.finish_with_windows().unwrap_or_else(|e| {
        eprintln!("assessment failed: {e}");
        exit(1);
    });

    println!("=== Table I ===\n\n{}", assessment.table1().render());

    // Coverage: say so when months are missing devices or starved of reads
    // (brownouts, retry exhaustion) — the aggregates above silently shrink
    // their sample otherwise.
    let coverage = assessment.coverage();
    if coverage.is_complete() {
        println!(
            "coverage: complete — {} devices × {} months\n",
            coverage.expected_devices(),
            coverage.months().len()
        );
    } else {
        println!(
            "coverage: {} of {} months sparse ({} devices expected)",
            coverage.sparse_months().len(),
            coverage.months().len(),
            coverage.expected_devices()
        );
        for month in coverage.sparse_months() {
            let (year, month_no) = month.year_month;
            println!(
                "  {year}-{month_no:02}: {} present, {} missing, {} underfilled",
                month.devices_present,
                month.missing_devices.len(),
                month.underfilled_devices.len()
            );
        }
        println!();
    }

    println!("=== development summaries ===\n");
    for series in [Series::Wchd, Series::NoiseEntropy, Series::StableRatio] {
        println!("{}", report::fig6_text(&assessment, series, 32));
    }

    println!("=== fitted hidden-variable model per device (month 0) ===\n");
    let first_month = windows
        .iter()
        .map(|w| w.year_month)
        .min()
        .expect("non-empty assessment");
    println!(
        "{:<8} {:>10} {:>10} {:>12}",
        "device", "mu", "sigma", "pred. WCHD"
    );
    for window in windows.iter().filter(|w| w.year_month == first_month) {
        match fit::fit_population(&window.counter) {
            Ok(pop) => println!(
                "{:<8} {:>10.3} {:>10.3} {:>11.2}%",
                window.device.to_string(),
                pop.mu,
                pop.sigma,
                pop.expected_wchd() * 100.0
            ),
            Err(e) => println!("{:<8} unfittable: {e}", window.device.to_string()),
        }
    }

    if let Some(prefix) = csv_prefix {
        let devices = format!("{prefix}_devices.csv");
        let aggregates = format!("{prefix}_aggregates.csv");
        std::fs::write(&devices, report::device_series_csv(&assessment)).unwrap_or_else(|e| {
            eprintln!("cannot write {devices}: {e}");
            exit(1);
        });
        std::fs::write(&aggregates, report::aggregate_csv(&assessment)).unwrap_or_else(|e| {
            eprintln!("cannot write {aggregates}: {e}");
            exit(1);
        });
        eprintln!("wrote {devices} and {aggregates}");
    }
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("invalid value `{value}` for {flag}");
        exit(2);
    })
}
