//! Runs a campaign under the crash-restarting supervisor.
//!
//! ```text
//! supervise [--max-restarts N] [--backoff-ms N] [--max-backoff-ms N]
//!           [--stall-timeout-s N] [--poll-ms N] [--metrics-out FILE]
//!           -- CAMPAIGN-COMMAND…
//! ```
//!
//! Everything after `--` is the child command, normally the `campaign`
//! binary with its own flags. It must include `--checkpoint-out FILE`
//! (the restart point); it must *not* include `--resume-from` or
//! `--io-incarnation` — the supervisor appends those itself for every
//! incarnation, resuming from the newest checkpoint generation that still
//! verifies (damaged ones are quarantined as `<gen>.quarantined-<n>` and
//! an older generation is used instead; give the child
//! `--checkpoint-keep K` to retain fallback generations).
//!
//! A child that exits non-zero — an injected I/O fault, a real disk
//! error, an external `kill -9` — is restarted after a capped exponential
//! backoff, up to `--max-restarts` times. A child whose output and
//! checkpoint files all stay untouched for `--stall-timeout-s` is killed
//! and restarted the same way. Because the campaign's resume path replays
//! exactly the records the checkpoint claims and discards any torn tail,
//! the supervised run's final output is byte-identical to an
//! uninterrupted run.
//!
//! `--metrics-out` writes the `supervisor.*` counters as a `pufobs/1`
//! snapshot; `supervisor.restarts == supervisor.child_exits -
//! supervisor.clean_exits` holds for every supervised run that completes.
//! Exits 0 when the child completed, 1 when the restart budget ran out.

use pufbench::metrics;
use pufbench::supervisor::{self, ChildSpec, Outcome, SupervisorConfig};
use pufobs::Instruments;
use std::process::exit;
use std::time::Duration;

fn main() {
    let mut config = SupervisorConfig::default();
    let mut metrics_out: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let split = args.iter().position(|a| a == "--");
    let (own, child) = match split {
        Some(at) => (&args[..at], &args[at + 1..]),
        None => (&args[..], &args[..0]),
    };

    let mut iter = own.iter();
    while let Some(arg) = iter.next() {
        let mut value = || {
            iter.next().unwrap_or_else(|| {
                eprintln!("{arg} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--max-restarts" => config.max_restarts = parse(value(), "--max-restarts"),
            "--backoff-ms" => {
                config.backoff = Duration::from_millis(parse(value(), "--backoff-ms"))
            }
            "--max-backoff-ms" => {
                config.max_backoff = Duration::from_millis(parse(value(), "--max-backoff-ms"))
            }
            "--stall-timeout-s" => {
                config.stall_timeout = Duration::from_secs(parse(value(), "--stall-timeout-s"))
            }
            "--poll-ms" => config.poll = Duration::from_millis(parse(value(), "--poll-ms")),
            "--metrics-out" => metrics_out = Some(value().clone()),
            "--help" | "-h" => {
                eprintln!(
                    "usage: supervise [--max-restarts N] [--backoff-ms N] \
                     [--max-backoff-ms N] [--stall-timeout-s N] [--poll-ms N] \
                     [--metrics-out FILE] -- CAMPAIGN-COMMAND…"
                );
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                exit(2);
            }
        }
    }
    let spec = ChildSpec::parse(child).unwrap_or_else(|e| {
        eprintln!("bad child command: {e} (try --help)");
        exit(2);
    });

    let obs = metrics_out.as_ref().map(|_| Instruments::new());
    let outcome = supervisor::run(&spec, &config, obs.as_ref()).unwrap_or_else(|e| {
        eprintln!("cannot run {}: {e}", spec.program);
        exit(1);
    });
    if let (Some(path), Some(ins)) = (&metrics_out, &obs) {
        match metrics::write_metrics(path, ins) {
            Ok(()) => eprintln!("wrote metrics snapshot to {path}"),
            Err(e) => eprintln!("cannot write {path}: {e}"),
        }
    }
    match outcome {
        Outcome::Completed { restarts } => {
            eprintln!("supervise: child completed after {restarts} restart(s)");
        }
        Outcome::BudgetExhausted { restarts } => {
            eprintln!(
                "supervise: giving up — restart budget of {restarts} exhausted without a \
                 clean exit"
            );
            exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("invalid value `{value}` for {flag}");
        exit(2);
    })
}
