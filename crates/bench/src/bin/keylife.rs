//! Replays a record file (JSON lines or `pufrec/1` binary) through the
//! key-lifetime workload: every device enrolls a key per ECC profile from
//! its first eligible read (debias → helper data → extractor) and every
//! later device-month reconstructs it, producing a per-month key-failure
//! table — observed rate next to the analytic bound at that month's
//! worst-case WCHD.
//!
//! ```text
//! keylife --in records [--format json|binary] [--reads 1000] [--eval-day 8]
//!         [--profiles golay-r5@128,polar-512-128@128] [--secret-bits 128]
//!         [--seed 2017] [--threads N] [--batch-lines N] [--csv FILE]
//!         [--bench-out FILE] [--metrics-out FILE] [--verbose]
//! ```
//!
//! Records shard across worker threads by device (`device % threads`), one
//! bounded-memory [`KeyLifeAccumulator`] per shard, merged deterministically
//! at the end — the output is byte-identical for every `--threads` value
//! and across the two storage formats. Unlike `assess`, a malformed record
//! aborts the run: key-failure statistics over a silently truncated stream
//! would claim reliability that was never measured.
//!
//! `--csv` writes the machine-readable table, `--bench-out` the
//! `bench-keylife/1` JSON throughput/failure summary (`BENCH_keylife.json`
//! by convention). `--metrics-out` dumps the `pufobs` counters; `--verbose`
//! prints a once-per-second heartbeat to stderr. None of them change the
//! report by a byte.

use pufassess::monthly::EvaluationProtocol;
use pufassess::{KeyLifeAccumulator, KeyLifeConfig, KeyProfile};
use pufbench::{keylife_bench_json, metrics};
use pufobs::Instruments;
use puftestbed::store::{
    AnyRecordReader, BinaryRecordReader, ParallelRecordReader, RecordFormat, DEFAULT_BATCH_LINES,
};
use puftestbed::Record;
use std::fs::File;
use std::io::BufReader;
use std::process::exit;
use std::sync::mpsc;
use std::time::Instant;

fn main() {
    let mut input: Option<String> = None;
    let mut format: Option<RecordFormat> = None;
    let mut protocol = EvaluationProtocol::default();
    let mut profile_list: Option<String> = None;
    let mut secret_bits = 128usize;
    let mut enroll_seed = 2017u64;
    let mut threads = pufbench::default_threads();
    let mut batch_lines = DEFAULT_BATCH_LINES;
    let mut csv_out: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut verbose = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || {
            iter.next().unwrap_or_else(|| {
                eprintln!("{arg} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--in" => input = Some(value().clone()),
            "--format" => format = Some(parse(value(), "--format")),
            "--reads" => protocol.reads_per_window = parse(value(), "--reads"),
            "--eval-day" => protocol.eval_day = parse(value(), "--eval-day"),
            "--profiles" => profile_list = Some(value().clone()),
            "--secret-bits" => {
                secret_bits = parse(value(), "--secret-bits");
                if secret_bits == 0 {
                    eprintln!("--secret-bits must be positive");
                    exit(2);
                }
            }
            "--seed" => enroll_seed = parse(value(), "--seed"),
            "--threads" => {
                threads = parse(value(), "--threads");
                if threads == 0 {
                    eprintln!("--threads must be positive");
                    exit(2);
                }
            }
            "--batch-lines" => {
                batch_lines = parse(value(), "--batch-lines");
                if batch_lines == 0 {
                    eprintln!("--batch-lines must be positive");
                    exit(2);
                }
            }
            "--csv" => csv_out = Some(value().clone()),
            "--bench-out" => bench_out = Some(value().clone()),
            "--metrics-out" => metrics_out = Some(value().clone()),
            "--verbose" => verbose = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: keylife --in FILE [--format json|binary] [--reads N] \
                     [--eval-day D] [--profiles SPEC[@BITS],...] [--secret-bits N] \
                     [--seed N] [--threads N] [--batch-lines N] [--csv FILE] \
                     [--bench-out FILE] [--metrics-out FILE] [--verbose]"
                );
                return;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                exit(2);
            }
        }
    }
    let Some(input) = input else {
        eprintln!("--in FILE is required (try --help)");
        exit(2);
    };
    let profiles = parse_profiles(profile_list.as_deref().unwrap_or("golay-r5"), secret_bits)
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            exit(2);
        });
    let config = KeyLifeConfig {
        protocol,
        profiles,
        enroll_seed,
    };

    let file = File::open(&input).unwrap_or_else(|e| {
        eprintln!("cannot open {input}: {e}");
        exit(1);
    });
    let obs = (metrics_out.is_some() || verbose).then(Instruments::new);
    let file = BufReader::new(file);
    let reader = match format {
        None => {
            AnyRecordReader::open(file, threads, batch_lines, obs.as_ref()).unwrap_or_else(|e| {
                eprintln!("cannot read {input}: {e}");
                exit(1);
            })
        }
        Some(RecordFormat::Json) => AnyRecordReader::Json(ParallelRecordReader::spawn_with(
            file,
            threads,
            batch_lines,
            obs.as_ref(),
        )),
        Some(RecordFormat::Binary) => AnyRecordReader::Binary(BinaryRecordReader::spawn_with(
            file,
            threads,
            batch_lines,
            obs.as_ref(),
        )),
    };
    let heartbeat = verbose.then(|| {
        let ins = obs.as_ref().expect("verbose implies instruments");
        metrics::spawn_heartbeat(ins, metrics::keylife_spec())
    });

    // Shard by device: each worker owns the full per-device state, so the
    // merged result is byte-identical to a single-threaded fold.
    let started = Instant::now();
    let merged = std::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(threads);
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (tx, rx) = mpsc::sync_channel::<Record>(1024);
            let mut accumulator = KeyLifeAccumulator::new(config.clone());
            if let Some(ins) = &obs {
                accumulator.attach_instruments(ins);
            }
            senders.push(tx);
            workers.push(scope.spawn(move || {
                for record in rx {
                    accumulator.push(&record);
                }
                accumulator
            }));
        }
        for item in reader {
            match item {
                Ok(record) => {
                    let shard = record.device.0 as usize % threads;
                    senders[shard].send(record).expect("worker outlives stream");
                }
                Err(e) => {
                    // Key-reliability numbers over a corrupt or truncated
                    // stream are worse than no numbers: refuse the input.
                    eprintln!("refusing corrupt input {input}: {e}");
                    exit(1);
                }
            }
        }
        drop(senders);
        let mut merged: Option<KeyLifeAccumulator> = None;
        for worker in workers {
            let shard = worker.join().expect("worker panics propagate");
            match &mut merged {
                None => merged = Some(shard),
                Some(m) => m.merge(shard),
            }
        }
        merged.expect("at least one shard")
    });
    drop(heartbeat);
    let elapsed = started.elapsed().as_secs_f64();

    eprintln!(
        "replayed {} records ({} folded, {} reconstructions)",
        merged.records_seen(),
        merged.records_folded(),
        merged.reconstructions()
    );
    if let (Some(path), Some(ins)) = (&metrics_out, &obs) {
        match metrics::write_metrics(path, ins) {
            Ok(()) => eprintln!("wrote metrics snapshot to {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            }
        }
    }

    let life = merged.finish().unwrap_or_else(|e| {
        eprintln!("key-lifetime evaluation failed: {e}");
        exit(1);
    });

    print!("{}", life.render_table());

    if let Some(path) = csv_out {
        std::fs::write(&path, life.csv()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        eprintln!("wrote {path}");
    }
    if let Some(path) = bench_out {
        std::fs::write(&path, keylife_bench_json(&life, elapsed)).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            exit(1);
        });
        eprintln!("wrote {path}");
    }
}

/// Parses the `--profiles` list: comma-separated spec tokens, each with an
/// optional `@BITS` secret-length override (else `default_bits`).
fn parse_profiles(list: &str, default_bits: usize) -> Result<Vec<KeyProfile>, String> {
    let profiles: Vec<KeyProfile> = list
        .split(',')
        .filter(|token| !token.is_empty())
        .map(|token| {
            let (spec, bits) = match token.split_once('@') {
                Some((spec, bits)) => (
                    spec,
                    bits.parse::<usize>()
                        .map_err(|_| format!("invalid secret length in profile `{token}`"))?,
                ),
                None => (token, default_bits),
            };
            KeyProfile::parse(spec, bits).map_err(|e| e.to_string())
        })
        .collect::<Result<_, _>>()?;
    if profiles.is_empty() {
        return Err("--profiles needs at least one profile".to_string());
    }
    Ok(profiles)
}

fn parse<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("invalid value `{value}` for {flag}");
        exit(2);
    })
}
