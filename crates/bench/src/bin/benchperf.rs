//! Runs the `bench-perf/1` kernel and end-to-end performance suites and
//! writes the JSON report.
//!
//! ```text
//! benchperf [--out FILE] [--seed N]
//! ```
//!
//! The quick profile is sub-second in release mode; the repository commits
//! one run as `BENCH_kernels.json` and CI's `perf-smoke` job fails when any
//! suite's speedup ratio collapses by more than 2× against it. Absolute
//! nanoseconds are machine-specific — only the kernel-vs-scalar ratios are
//! compared across machines.

use pufbench::perf::{perf_report_json, run_quick};
use std::process::exit;

fn main() {
    let mut out: Option<String> = None;
    let mut seed = 2017u64;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = || {
            iter.next().unwrap_or_else(|| {
                eprintln!("error: {arg} needs a value");
                exit(2);
            })
        };
        match arg.as_str() {
            "--out" => out = Some(value().clone()),
            "--seed" => {
                seed = value().parse().unwrap_or_else(|e| {
                    eprintln!("error: bad --seed: {e}");
                    exit(2);
                });
            }
            "--help" | "-h" => {
                eprintln!("usage: benchperf [--out FILE] [--seed N]");
                exit(0);
            }
            other => {
                eprintln!("error: unknown argument {other}");
                exit(2);
            }
        }
    }

    let report = run_quick(seed);
    for suite in report.kernels.iter().chain(&report.end_to_end) {
        eprintln!(
            "{:<20} scalar {:>12} ns   kernel {:>12} ns   {:.2}x",
            suite.name,
            suite.scalar_ns,
            suite.kernel_ns,
            suite.speedup()
        );
    }

    let json = perf_report_json(&report);
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("error: writing {path}: {e}");
                exit(1);
            }
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
