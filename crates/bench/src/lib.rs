//! Shared scenarios for the reproduction harness and benchmarks.
//!
//! Every table and figure of the paper maps to one function here; the
//! `repro` binary prints them and the Criterion benches time them. Scales:
//!
//! * [`Scale::Smoke`] — seconds; CI-sized sanity run.
//! * [`Scale::Small`] — tens of seconds; trends clearly visible.
//! * [`Scale::Paper`] — the full 16-board × 25-month × 1 000-read protocol
//!   (minutes in release mode; the read-out count per window is the paper's).

use pufassess::monthly::EvaluationProtocol;
use pufassess::streaming::WindowAccumulator;
use pufassess::{Assessment, KeyLife, KeyLifeAccumulator, KeyLifeConfig, KeyProfile};
use pufobs::Instruments;
use puftestbed::store::atomic::tmp_path;
use puftestbed::store::iofault::FaultyReader;
use puftestbed::store::{
    AnyRecordReader, AtomicFile, BinarySink, IoPolicy, JsonLinesSink, RecordFormat, RecordSink,
    TeeSink,
};
use puftestbed::{Campaign, CampaignConfig, Dataset, Record};
use std::fs;
use std::io::{self, BufReader, BufWriter};
use std::path::{Path, PathBuf};

/// How much of the paper's scale to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minimal sanity scale (4 boards, 1 KiB·¼ arrays, 50 reads, 6 months).
    Smoke,
    /// Reduced scale with clear trends (8 boards, 2 048 bits, 200 reads,
    /// 24 months).
    Small,
    /// The paper's full protocol (16 boards, 8 192-bit read-outs, 1 000
    /// reads, 24 months).
    Paper,
}

impl Scale {
    /// Parses a scale name (`smoke`, `small`, `paper`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "smoke" => Some(Scale::Smoke),
            "small" => Some(Scale::Small),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The campaign configuration at this scale.
    pub fn campaign_config(&self) -> CampaignConfig {
        match self {
            Scale::Smoke => CampaignConfig {
                boards: 4,
                sram_bits: 1024,
                read_bits: 1024,
                months: 6,
                reads_per_window: 50,
                ..CampaignConfig::default()
            },
            Scale::Small => CampaignConfig {
                boards: 8,
                sram_bits: 2048,
                read_bits: 2048,
                months: 24,
                reads_per_window: 200,
                ..CampaignConfig::default()
            },
            // The paper's defaults.
            Scale::Paper => CampaignConfig::default(),
        }
    }

    /// The matching evaluation protocol.
    pub fn protocol(&self) -> EvaluationProtocol {
        EvaluationProtocol {
            reads_per_window: self.campaign_config().reads_per_window,
            ..EvaluationProtocol::default()
        }
    }

    /// ECC profiles dimensioned for this scale's read width: the secret
    /// length is chosen so the debiased response (≈23 % of the raw bits at
    /// the paper's 62.7 % bias) still covers the codeword. Paper scale
    /// carries the paper's full 128-bit secret; the reduced scales shrink
    /// the secret with the read-out, keeping enrollment feasible.
    pub fn keylife_profiles(&self) -> Vec<KeyProfile> {
        let specs: &[(&str, usize)] = match self {
            Scale::Smoke => &[("golay-r5", 12), ("polar-128-16", 16)],
            Scale::Small => &[("golay-r5", 24), ("polar-256-32", 32)],
            Scale::Paper => &[("golay-r5", 128), ("polar-512-128", 128)],
        };
        specs
            .iter()
            .map(|&(token, bits)| {
                KeyProfile::parse(token, bits).expect("built-in profiles are valid")
            })
            .collect()
    }

    /// The key-lifetime workload configuration at this scale.
    pub fn keylife_config(&self, enroll_seed: u64) -> KeyLifeConfig {
        KeyLifeConfig {
            protocol: self.protocol(),
            profiles: self.keylife_profiles(),
            enroll_seed,
        }
    }
}

/// The default worker-thread count for campaign execution: the machine's
/// available parallelism (1 if it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs the campaign at `scale` sequentially and returns its dataset.
pub fn run_campaign(scale: Scale, seed: u64) -> Dataset {
    run_campaign_with(scale, seed, 1)
}

/// Runs the campaign at `scale` sharded across `threads` workers. The
/// dataset is identical for every thread count (see
/// `puftestbed::board_stream_seed`); only wall-clock time changes.
pub fn run_campaign_with(scale: Scale, seed: u64, threads: usize) -> Dataset {
    Campaign::new(scale.campaign_config(), seed)
        .threads(threads)
        .run_in_memory()
}

/// Runs the campaign and the full assessment pipeline at `scale`
/// sequentially.
///
/// # Panics
///
/// Panics if the assessment fails (cannot happen for the built-in scales).
pub fn run_assessment(scale: Scale, seed: u64) -> Assessment {
    run_assessment_with(scale, seed, 1)
}

/// Runs the campaign across `threads` workers, then the full assessment
/// pipeline, at `scale`.
///
/// # Panics
///
/// Panics if the assessment fails (cannot happen for the built-in scales).
pub fn run_assessment_with(scale: Scale, seed: u64, threads: usize) -> Assessment {
    let dataset = run_campaign_with(scale, seed, threads);
    Assessment::from_dataset(&dataset, &scale.protocol())
        .expect("built-in scales produce assessable datasets")
}

/// Runs the campaign across `threads` workers, piping records straight into
/// the streaming [`WindowAccumulator`] — no dataset is materialised, so
/// peak memory is bounded by the per-window state regardless of how many
/// records the campaign emits. The result is identical to
/// [`run_assessment_with`] at the same scale and seed.
///
/// # Panics
///
/// Panics if the assessment fails (cannot happen for the built-in scales).
pub fn run_assessment_streaming(scale: Scale, seed: u64, threads: usize) -> Assessment {
    run_assessment_streaming_with(scale, seed, threads, None)
}

/// [`run_assessment_streaming`] with an optional instrument registry wired
/// through the whole pipe: the campaign maintains `campaign.*` metrics and
/// the accumulator `assess.*` metrics. The assessment is identical with or
/// without instruments.
///
/// # Panics
///
/// Panics if the assessment fails (cannot happen for the built-in scales).
pub fn run_assessment_streaming_with(
    scale: Scale,
    seed: u64,
    threads: usize,
    instruments: Option<&Instruments>,
) -> Assessment {
    let mut accumulator = WindowAccumulator::new(scale.protocol());
    let mut campaign = Campaign::new(scale.campaign_config(), seed).threads(threads);
    if let Some(ins) = instruments {
        accumulator.attach_instruments(ins);
        campaign = campaign.instruments(ins);
    }
    campaign
        .run(&mut accumulator)
        .expect("accumulator sink cannot fail");
    accumulator
        .finish()
        .expect("built-in scales produce assessable datasets")
}

/// Runs the campaign at `scale` across `threads` workers, piping records
/// straight into the key-lifetime workload: every device enrolls a key per
/// profile from its first eligible read and every later device-month
/// replays through reconstruction. The report is identical for every
/// thread count, and identical with or without `instruments`.
///
/// # Panics
///
/// Panics if the workload fails (cannot happen for the built-in scales).
pub fn run_keylife_streaming_with(
    scale: Scale,
    seed: u64,
    threads: usize,
    enroll_seed: u64,
    instruments: Option<&Instruments>,
) -> KeyLife {
    let mut accumulator = KeyLifeAccumulator::new(scale.keylife_config(enroll_seed));
    let mut campaign = Campaign::new(scale.campaign_config(), seed).threads(threads);
    if let Some(ins) = instruments {
        accumulator.attach_instruments(ins);
        campaign = campaign.instruments(ins);
    }
    campaign
        .run(&mut accumulator)
        .expect("accumulator sink cannot fail");
    accumulator
        .finish()
        .expect("built-in scales produce evaluable datasets")
}

/// Serializes a [`KeyLife`] report plus wall-clock throughput into the
/// `bench-keylife/1` JSON document (`BENCH_keylife.json`): per-profile
/// attempt/failure/erasure totals with the worst month's observed rate and
/// analytic bound, plus the stream counters. Floats are finite by
/// construction, so the output is always valid JSON.
pub fn keylife_bench_json(life: &KeyLife, elapsed_seconds: f64) -> String {
    fn opt(value: Option<f64>) -> String {
        value.map_or_else(|| "null".to_string(), |v| v.to_string())
    }
    let throughput = if elapsed_seconds > 0.0 {
        life.records_seen as f64 / elapsed_seconds
    } else {
        0.0
    };
    let profiles: Vec<String> = life
        .profiles
        .iter()
        .map(|p| {
            let attempts: u64 = p.rows.iter().map(|r| r.attempts).sum();
            let failures: u64 = p.rows.iter().map(|r| r.failures).sum();
            let erasures: u64 = p.rows.iter().map(|r| r.erasures).sum();
            let worst_rate = p
                .rows
                .iter()
                .filter_map(|r| r.rate)
                .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))));
            let worst_bound = p
                .rows
                .iter()
                .filter_map(|r| r.bound)
                .fold(None, |acc, b| Some(acc.map_or(b, |a: f64| a.max(b))));
            format!(
                "    {{\"name\": \"{}\", \"secret_bits\": {}, \"enrolled\": {}, \
                 \"attempts\": {}, \"failures\": {}, \"erasures\": {}, \
                 \"worst_month_rate\": {}, \"worst_month_bound\": {}}}",
                p.profile.name,
                p.profile.secret_bits,
                p.enrolled,
                attempts,
                failures,
                erasures,
                opt(worst_rate),
                opt(worst_bound),
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"bench-keylife/1\",\n  \"devices\": {},\n  \"months\": {},\n  \
         \"enroll_seed\": {},\n  \"records_seen\": {},\n  \"records_folded\": {},\n  \
         \"reconstructions\": {},\n  \"reconstruct_failures\": {},\n  \"wrong_keys\": {},\n  \
         \"enroll_failures\": {},\n  \"elapsed_seconds\": {},\n  \"records_per_second\": {},\n  \
         \"profiles\": [\n{}\n  ]\n}}\n",
        life.devices,
        life.months.len(),
        life.enroll_seed,
        life.records_seen,
        life.records_folded,
        life.reconstructions,
        life.reconstruct_failures,
        life.wrong_keys,
        life.enroll_failures,
        elapsed_seconds,
        throughput,
        profiles.join(",\n"),
    )
}

/// [`run_assessment_streaming_with`], additionally teeing every campaign
/// record into `sink` as it streams past the accumulator — one pass
/// produces both the assessment and a record file, in either storage
/// format. The assessment is identical to the non-recording variants.
///
/// # Errors
///
/// Returns the first error from `sink` (the campaign stops at it).
///
/// # Panics
///
/// Panics if the assessment fails (cannot happen for the built-in scales).
pub fn run_assessment_streaming_recording<S: RecordSink>(
    scale: Scale,
    seed: u64,
    threads: usize,
    instruments: Option<&Instruments>,
    sink: &mut S,
) -> io::Result<Assessment> {
    let mut accumulator = WindowAccumulator::new(scale.protocol());
    let mut campaign = Campaign::new(scale.campaign_config(), seed).threads(threads);
    if let Some(ins) = instruments {
        accumulator.attach_instruments(ins);
        campaign = campaign.instruments(ins);
    }
    let mut tee = TeeSink::new(&mut accumulator, sink);
    campaign.run(&mut tee)?;
    Ok(accumulator
        .finish()
        .expect("built-in scales produce assessable datasets"))
}

/// A buffered, atomically written file sink in either storage format — the
/// shared `--format` plumbing for the CLI binaries.
///
/// Bytes stream into `<path>.tmp`; only [`finish`](Self::finish) renames
/// them to the final path, so a crash mid-run never leaves a torn file
/// under the final name (the `.tmp` is what the resume machinery salvages).
#[derive(Debug)]
pub enum FormatSink {
    /// Writing JSON lines.
    Json(JsonLinesSink<BufWriter<AtomicFile>>),
    /// Writing `pufrec/1` binary.
    Binary(BinarySink<BufWriter<AtomicFile>>),
}

impl FormatSink {
    /// Starts an atomic write to `path` and wraps it in the sink for
    /// `format`. `declared_bits` goes into the binary file header
    /// (advisory; pass the campaign read width, or 0 when unknown or
    /// mixed).
    ///
    /// # Errors
    ///
    /// Returns the error from creating the file or writing the header.
    pub fn create(
        path: impl AsRef<Path>,
        format: RecordFormat,
        declared_bits: u32,
    ) -> io::Result<Self> {
        Self::create_with(path, format, declared_bits, None)
    }

    /// [`create`](Self::create) for a campaign output under supervision:
    /// all I/O routes through the optional [`IoPolicy`] (deterministic
    /// fault injection), and the temporary file survives a *failed* run —
    /// not just a killed one — so the checkpoint-resume salvage always has
    /// its partial bytes. `None` policy still keeps the partial (that is
    /// free, and a real disk error deserves the same resumability as an
    /// injected one).
    ///
    /// # Errors
    ///
    /// Returns the error from creating the file or writing the header.
    pub fn create_with(
        path: impl AsRef<Path>,
        format: RecordFormat,
        declared_bits: u32,
        policy: Option<IoPolicy>,
    ) -> io::Result<Self> {
        let file = BufWriter::new(AtomicFile::create_with(path, policy)?.keep_partial_on_drop());
        Ok(match format {
            RecordFormat::Json => Self::Json(JsonLinesSink::new(file)),
            RecordFormat::Binary => {
                Self::Binary(BinarySink::with_declared_bits(file, declared_bits)?)
            }
        })
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        match self {
            Self::Json(s) => s.written(),
            Self::Binary(s) => s.written(),
        }
    }

    /// Flushes everything and atomically publishes the file at its final
    /// path.
    ///
    /// # Errors
    ///
    /// Returns the first flush/sync/rename error.
    pub fn finish(self) -> io::Result<()> {
        match self {
            Self::Json(s) => s.into_inner()?.into_inner().map_err(|e| e.into_error())?,
            Self::Binary(s) => s.into_inner()?.into_inner().map_err(|e| e.into_error())?,
        }
        .persist()
    }
}

impl RecordSink for FormatSink {
    fn record(&mut self, record: &Record) -> io::Result<()> {
        match self {
            Self::Json(s) => s.record(record),
            Self::Binary(s) => s.record(record),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Self::Json(s) => RecordSink::flush(s),
            Self::Binary(s) => RecordSink::flush(s),
        }
    }
}

/// Reopens a campaign output file for a checkpoint resume.
///
/// The interrupted run left its records in `<path>.tmp` (unpersisted
/// atomic write) or, if it got as far as finishing, in `path` itself; the
/// checkpoint claims the first `expect` of them. This renames that partial
/// file to `<path>.salvage`, re-encodes exactly `expect` records from it
/// into a fresh [`FormatSink`] (the codecs are deterministic, so the
/// re-encoded prefix is byte-identical to the original), optionally teeing
/// each salvaged record into `also` (e.g. an assessment accumulator), and
/// deletes the salvage file. The returned sink is positioned exactly where
/// the checkpoint was taken.
///
/// With `expect == 0` there is nothing to salvage and this is just
/// [`FormatSink::create`].
///
/// # Errors
///
/// Fails if no partial output exists, if it holds fewer than `expect`
/// readable records (the checkpoint then claims data that was never made
/// durable — resuming would corrupt the stream), or on any I/O error.
pub fn reopen_for_resume(
    path: &str,
    format: RecordFormat,
    declared_bits: u32,
    expect: u64,
    also: Option<&mut dyn RecordSink>,
) -> io::Result<FormatSink> {
    reopen_for_resume_with(path, format, declared_bits, expect, also, None)
}

/// [`reopen_for_resume`] with the salvage read and the fresh sink routed
/// through an optional [`IoPolicy`] (deterministic fault injection). An
/// injected fault mid-salvage is safe: the salvage file stays on disk and
/// the next attempt re-reads it from the start.
///
/// # Errors
///
/// As [`reopen_for_resume`], plus any injected fault.
pub fn reopen_for_resume_with(
    path: &str,
    format: RecordFormat,
    declared_bits: u32,
    expect: u64,
    mut also: Option<&mut dyn RecordSink>,
    policy: Option<IoPolicy>,
) -> io::Result<FormatSink> {
    if expect == 0 {
        return FormatSink::create_with(path, format, declared_bits, policy);
    }
    let target = Path::new(path);
    let salvage = salvage_path(target);
    if !salvage.exists() {
        let partial = [tmp_path(target), target.to_path_buf()]
            .into_iter()
            .find(|p| p.exists())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::NotFound,
                    format!(
                        "cannot resume: checkpoint claims {expect} records but no partial \
                         output exists at {path} (or its .tmp)"
                    ),
                )
            })?;
        fs::rename(&partial, &salvage)?;
    }
    let salvage_file = fs::File::open(&salvage)?;
    let reader: Box<dyn io::Read + Send> = match policy.clone() {
        Some(p) => Box::new(FaultyReader::new(salvage_file, p, &salvage)),
        None => Box::new(salvage_file),
    };
    let reader = AnyRecordReader::open(
        BufReader::new(reader),
        1, // strictly in-order: torn bytes past the prefix must not surface early
        256,
        None,
    )?;
    let mut sink = FormatSink::create_with(path, format, declared_bits, policy)?;
    let mut recovered = 0u64;
    for item in reader {
        if recovered == expect {
            break;
        }
        let record = item.map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "cannot resume: partial output {} is unreadable at record {recovered} \
                     of the {expect} the checkpoint claims: {e}",
                    salvage.display()
                ),
            )
        })?;
        sink.record(&record)?;
        if let Some(other) = also.as_deref_mut() {
            other.record(&record)?;
        }
        recovered += 1;
    }
    if recovered < expect {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "cannot resume: partial output {} holds {recovered} records, checkpoint \
                 claims {expect}",
                salvage.display()
            ),
        ));
    }
    // Flush the re-encoded prefix to the OS *before* deleting the salvage
    // file: a crash in between must leave either the salvage (re-read on
    // the next attempt) or a `.tmp` already holding every record the
    // checkpoint claims — never neither. Without this, a kill landing
    // between the delete and the next buffered flush strands the resume.
    RecordSink::flush(&mut sink)?;
    fs::remove_file(&salvage)?;
    Ok(sink)
}

/// Where [`reopen_for_resume`] parks the interrupted run's partial output
/// while re-encoding it (`<target>.salvage`).
pub fn salvage_path(target: &Path) -> PathBuf {
    let mut name = target.as_os_str().to_os_string();
    name.push(".salvage");
    PathBuf::from(name)
}

/// Total power cycles a campaign at `config` will execute — the progress
/// denominator for ETA rendering.
pub fn campaign_total_cycles(config: &CampaignConfig) -> u64 {
    let windows = match config.plan {
        puftestbed::MeasurementPlan::Windowed => u64::from(config.months) + 1,
        puftestbed::MeasurementPlan::Continuous => 1,
    };
    windows * config.boards as u64 * u64::from(config.reads_per_window)
}

pub mod perf;
pub mod supervisor;

/// Shared `--metrics-out` / `--verbose` plumbing for the CLI binaries.
pub mod metrics {
    use pufobs::render::progress_line;
    use pufobs::{Heartbeat, Instruments, ProgressSpec};
    use std::time::Duration;

    /// Writes the current snapshot of `ins` to `path` as one JSON document
    /// (the `pufobs/1` schema) with a trailing newline.
    pub fn write_metrics(path: &str, ins: &Instruments) -> std::io::Result<()> {
        let mut json = ins.snapshot().to_json();
        json.push('\n');
        std::fs::write(path, json)
    }

    /// Spawns a once-per-second stderr heartbeat rendering `spec`. Keep the
    /// returned handle alive while work runs; drop (or `stop`) it before
    /// printing final output so lines do not interleave.
    pub fn spawn_heartbeat(ins: &Instruments, spec: ProgressSpec) -> Heartbeat {
        Heartbeat::spawn(ins.clone(), Duration::from_secs(1), move |snap| {
            progress_line(snap, &spec)
        })
    }

    /// The heartbeat spec for a campaign producer: power cycles against the
    /// known total, with drop/retry columns.
    pub fn campaign_spec(total_cycles: u64) -> ProgressSpec {
        ProgressSpec::new(
            "campaign",
            "campaign.power_cycles",
            "cycles",
            Some(total_cycles),
        )
        .extra("records", "campaign.records")
        .extra("dropped", "campaign.dropped")
        .extra("retries", "campaign.retries")
    }

    /// The heartbeat spec for the assessment consumer: folded records (the
    /// total is unknown when reading a file, so no ETA), with skip/malformed
    /// columns.
    pub fn assess_spec() -> ProgressSpec {
        ProgressSpec::new("assess", "assess.records_seen", "rec", None)
            .extra("folded", "assess.records_folded")
            .extra("skipped", "assess.records_skipped")
            .extra("malformed", "reader.malformed_lines")
    }

    /// The heartbeat spec for the key-lifetime consumer: records against an
    /// unknown total, with reconstruction-attempt and failure columns.
    pub fn keylife_spec() -> ProgressSpec {
        ProgressSpec::new("keylife", "keylife.records_seen", "rec", None)
            .extra("folded", "keylife.records_folded")
            .extra("reconstructions", "keylife.reconstructions")
            .extra("failures", "keylife.reconstruct_failures")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn smoke_assessment_runs_end_to_end() {
        let a = run_assessment(Scale::Smoke, 1);
        assert_eq!(a.months(), 7);
        assert_eq!(a.devices().len(), 4);
    }

    #[test]
    fn streaming_assessment_matches_in_memory() {
        let streamed = run_assessment_streaming(Scale::Smoke, 1, 2);
        let in_memory = run_assessment(Scale::Smoke, 1);
        assert_eq!(streamed, in_memory);
    }

    #[test]
    fn keylife_profiles_fit_their_scales_and_serialize_to_valid_json() {
        // Every built-in profile must enroll at its scale: the debiased
        // response has to cover the codeword, which is exactly what
        // running the workload end to end checks.
        let life = run_keylife_streaming_with(Scale::Smoke, 1, 2, 7, None);
        assert_eq!(life.devices, 4);
        assert_eq!(life.enroll_failures, 0);
        assert_eq!(life.wrong_keys, 0);

        let json = keylife_bench_json(&life, 1.5);
        assert!(json.contains("\"schema\": \"bench-keylife/1\""));
        assert!(json.contains("\"name\": \"golay-r5\""));
        assert!(json.contains("\"name\": \"polar-128-16\""));
        // No trailing commas, balanced braces — the CI job re-validates
        // with python3 -m json.tool.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert!(!json.contains(",\n  ]"), "{json}");
        // Small and paper profiles at least construct.
        assert_eq!(Scale::Small.keylife_profiles().len(), 2);
        assert_eq!(Scale::Paper.keylife_profiles().len(), 2);
    }

    #[test]
    fn paper_scale_config_matches_the_paper() {
        let c = Scale::Paper.campaign_config();
        assert_eq!(c.boards, 16);
        assert_eq!(c.read_bits, 8192);
        assert_eq!(c.reads_per_window, 1000);
        assert_eq!(c.months, 24);
    }
}
