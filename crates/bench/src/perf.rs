//! `bench-perf/1`: fixed-seed kernel and end-to-end performance suites.
//!
//! Each kernel suite times a word-parallel kernel from [`pufbits::kernel`]
//! against its per-bit scalar oracle (`pufbits::kernel::scalar`) on the same
//! fixed-seed data; the end-to-end suite times the production decode + fold
//! pipeline (canonical-layout JSON scanner, block-transpose counters,
//! popcount Hamming kernels) against the reference pipeline (tree-parsing
//! decoder, per-set-bit counter, per-bit distance scans) over the same
//! record stream. Results render as a `bench-perf/1` JSON document; the
//! repository commits one as `BENCH_kernels.json` and CI fails when any
//! suite's speedup ratio collapses by more than 2× against it.
//!
//! Timings are best-of-N wall-clock (`Instant`), which is stable enough for
//! a ratio check with a deliberately loose threshold; the committed
//! absolute nanoseconds are machine-specific and only the ratios travel.

use pufassess::streaming::WindowAccumulator;
use pufassess::Assessment;
use pufbits::{kernel, BitVec, BlockCounter, OnesCounter};
use puftestbed::store::JsonLinesSink;
use puftestbed::{Campaign, Record};
use std::time::Instant;

/// One suite's timings: the kernel and its scalar reference on identical
/// inputs, in nanoseconds (best of the profile's iterations).
#[derive(Debug, Clone)]
pub struct SuiteTiming {
    /// Suite name, e.g. `"pairwise_distance"`.
    pub name: &'static str,
    /// Work items processed per run (pairs, bits, records — per the suite).
    pub items: u64,
    /// Reference (scalar) time in nanoseconds.
    pub scalar_ns: u64,
    /// Kernel time in nanoseconds.
    pub kernel_ns: u64,
}

impl SuiteTiming {
    /// Scalar time over kernel time — how many times faster the kernel is.
    pub fn speedup(&self) -> f64 {
        self.scalar_ns as f64 / self.kernel_ns as f64
    }
}

/// The full report: kernel microsuites plus the end-to-end pipeline suite.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// The fixed seed every suite derives its data from.
    pub seed: u64,
    /// Profile name (`"quick"`).
    pub profile: &'static str,
    /// Kernel microsuites.
    pub kernels: Vec<SuiteTiming>,
    /// End-to-end pipeline suites.
    pub end_to_end: Vec<SuiteTiming>,
}

/// Best-of-`iters` wall-clock nanoseconds for `f`, with the result fed to
/// a black box so the optimizer cannot drop the work.
fn time_best_of<R>(iters: u32, mut f: impl FnMut() -> R) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_nanos() as u64);
    }
    best.max(1)
}

/// Deterministic word stream (xorshift64*), tail-masked to `len` bits.
fn masked_stream(len: usize, mut seed: u64) -> Vec<u64> {
    seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut words: Vec<u64> = (0..len.div_ceil(64))
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed.wrapping_mul(0x2545_F491_4F6C_DD1D)
        })
        .collect();
    if let Some(last) = words.last_mut() {
        *last &= kernel::tail_mask(len);
    }
    words
}

/// Runs every suite in the quick profile (sub-second in release mode) and
/// returns the report. All data is derived from `seed`; two runs with the
/// same seed time identical work.
pub fn run_quick(seed: u64) -> PerfReport {
    const ITERS: u32 = 5;
    let mut kernels = Vec::new();

    // Pairwise Hamming distance: the uniqueness/BCHD hot loop. 48 rows of
    // 4096 bits → 1128 pairs per run.
    {
        const ROWS: usize = 48;
        const WIDTH: usize = 4096;
        let rows: Vec<Vec<u64>> = (0..ROWS)
            .map(|r| masked_stream(WIDTH, seed.wrapping_add(r as u64)))
            .collect();
        let pairs = (ROWS * (ROWS - 1) / 2) as u64;
        let kernel_ns = time_best_of(ITERS, || {
            let mut acc = 0u64;
            for i in 0..ROWS {
                for j in (i + 1)..ROWS {
                    acc += kernel::hamming_distance(&rows[i], &rows[j]);
                }
            }
            acc
        });
        let scalar_ns = time_best_of(ITERS, || {
            let mut acc = 0u64;
            for i in 0..ROWS {
                for j in (i + 1)..ROWS {
                    acc += kernel::scalar::hamming_distance(&rows[i], &rows[j], WIDTH);
                }
            }
            acc
        });
        kernels.push(SuiteTiming {
            name: "pairwise_distance",
            items: pairs,
            scalar_ns,
            kernel_ns,
        });
    }

    // Whole-stream popcount fold (FHW, bias).
    {
        const LEN: usize = 1 << 20;
        let words = masked_stream(LEN, seed ^ 0x01);
        let kernel_ns = time_best_of(ITERS, || kernel::ones(&words));
        let scalar_ns = time_best_of(ITERS, || kernel::scalar::ones(&words, LEN));
        kernels.push(SuiteTiming {
            name: "ones_fold",
            items: LEN as u64,
            scalar_ns,
            kernel_ns,
        });
    }

    // Per-cell one-count accumulation: BlockCounter's 64-row transpose vs
    // the per-set-bit counter. 256 rows of 4096 bits.
    {
        const ROWS: usize = 256;
        const WIDTH: usize = 4096;
        let readouts: Vec<BitVec> = (0..ROWS)
            .map(|r| {
                BitVec::from_words(
                    masked_stream(WIDTH, seed.wrapping_add(1000 + r as u64)),
                    WIDTH,
                )
            })
            .collect();
        let kernel_ns = time_best_of(ITERS, || {
            let mut c = BlockCounter::new(WIDTH);
            for r in &readouts {
                c.add(r).unwrap();
            }
            c.into_counter()
        });
        let scalar_ns = time_best_of(ITERS, || {
            let mut c = OnesCounter::new(WIDTH);
            for r in &readouts {
                c.add(r).unwrap();
            }
            c
        });
        kernels.push(SuiteTiming {
            name: "ones_counter_block",
            items: (ROWS * WIDTH) as u64,
            scalar_ns,
            kernel_ns,
        });
    }

    // Masked selection (TRNG noise-cell extraction, debias replay).
    {
        const LEN: usize = 1 << 20;
        let data = masked_stream(LEN, seed ^ 0x02);
        let mask = masked_stream(LEN, seed ^ 0x03);
        let mut out = Vec::new();
        let kernel_ns = time_best_of(ITERS, || kernel::select(&data, &mask, LEN, &mut out));
        let scalar_ns = time_best_of(ITERS, || {
            kernel::scalar::select(&data, &mask, LEN, &mut out)
        });
        kernels.push(SuiteTiming {
            name: "select",
            items: LEN as u64,
            scalar_ns,
            kernel_ns,
        });
    }

    // Von-Neumann pair selection (debias enrollment).
    {
        const LEN: usize = 1 << 20;
        let words = masked_stream(LEN, seed ^ 0x04);
        let (mut m, mut b) = (Vec::new(), Vec::new());
        let kernel_ns = time_best_of(ITERS, || kernel::pair_select(&words, LEN, &mut m, &mut b));
        let scalar_ns = time_best_of(ITERS, || {
            kernel::scalar::pair_select(&words, LEN, &mut m, &mut b)
        });
        kernels.push(SuiteTiming {
            name: "pair_select",
            items: LEN as u64,
            scalar_ns,
            kernel_ns,
        });
    }

    // Transition count (SP800-22 runs) and Markov contingency table.
    {
        const LEN: usize = 1 << 20;
        let words = masked_stream(LEN, seed ^ 0x05);
        let kernel_ns = time_best_of(ITERS, || kernel::transitions(&words, LEN));
        let scalar_ns = time_best_of(ITERS, || kernel::scalar::transitions(&words, LEN));
        kernels.push(SuiteTiming {
            name: "transitions",
            items: LEN as u64,
            scalar_ns,
            kernel_ns,
        });
        let kernel_ns = time_best_of(ITERS, || kernel::pair_counts(&words, LEN));
        let scalar_ns = time_best_of(ITERS, || kernel::scalar::pair_counts(&words, LEN));
        kernels.push(SuiteTiming {
            name: "pair_counts",
            items: LEN as u64,
            scalar_ns,
            kernel_ns,
        });
    }

    // Overlapping cyclic window counts (serial / approximate entropy).
    {
        const LEN: usize = 1 << 18;
        const M: usize = 3;
        let words = masked_stream(LEN, seed ^ 0x06);
        let kernel_ns = time_best_of(ITERS, || kernel::window_counts(&words, LEN, M));
        let scalar_ns = time_best_of(ITERS, || kernel::scalar::window_counts(&words, LEN, M));
        kernels.push(SuiteTiming {
            name: "window_counts_m3",
            items: LEN as u64,
            scalar_ns,
            kernel_ns,
        });
    }

    // End-to-end: decode + streaming assessment over a smoke-scale
    // campaign rendered to canonical JSON lines.
    let end_to_end = vec![end_to_end_assess(seed, ITERS)];

    PerfReport {
        seed,
        profile: "quick",
        kernels,
        end_to_end,
    }
}

/// The end-to-end suite: records/sec through decode + fold.
///
/// * **kernel path** — the production pipeline: canonical-scanner decode
///   ([`Record::parse_json_line`]) into the real [`WindowAccumulator`]
///   (block-transpose counters, popcount WCHD/FHW).
/// * **scalar path** — the pre-kernel shape: tree-parsing decode
///   ([`Record::parse_json_line_tree`]) into a fold that does the same
///   per-record work with the per-bit oracles (per-set-bit counter add,
///   per-bit Hamming distance and weight).
fn end_to_end_assess(seed: u64, iters: u32) -> SuiteTiming {
    let scale = crate::Scale::Smoke;
    let mut sink = JsonLinesSink::new(Vec::new());
    Campaign::new(scale.campaign_config(), seed)
        .run(&mut sink)
        .expect("in-memory campaign cannot fail");
    let records = sink.written();
    let bytes = sink.into_inner().expect("vec sink");
    let lines: Vec<String> = String::from_utf8(bytes)
        .expect("json lines are utf-8")
        .lines()
        .map(str::to_owned)
        .collect();
    let protocol = scale.protocol();

    let kernel_ns = time_best_of(iters, || {
        let mut acc = WindowAccumulator::new(protocol);
        for line in &lines {
            let record = Record::parse_json_line(line).expect("canonical line");
            acc.push(&record);
        }
        let assessment: Assessment = acc.finish().expect("smoke campaign assesses");
        assessment
    });

    let scalar_ns = time_best_of(iters, || {
        // Reference fold: same per-record statistics, per-bit.
        let mut counters: std::collections::BTreeMap<u8, OnesCounter> = Default::default();
        let mut firsts: std::collections::BTreeMap<u8, BitVec> = Default::default();
        let mut wchd_sum = 0.0f64;
        let mut fhw_sum = 0.0f64;
        for line in &lines {
            let record = Record::parse_json_line_tree(line).expect("valid line");
            let width = record.data.len();
            let reference = firsts
                .entry(record.device.0)
                .or_insert_with(|| record.data.clone());
            let hd = kernel::scalar::hamming_distance(
                record.data.as_words(),
                reference.as_words(),
                width,
            );
            wchd_sum += hd as f64 / width as f64;
            fhw_sum += kernel::scalar::ones(record.data.as_words(), width) as f64 / width as f64;
            counters
                .entry(record.device.0)
                .or_insert_with(|| OnesCounter::new(width))
                .add(&record.data)
                .expect("constant width");
        }
        (wchd_sum, fhw_sum, counters.len())
    });

    SuiteTiming {
        name: "streaming_assess",
        items: records,
        scalar_ns,
        kernel_ns,
    }
}

/// Renders a report as a `bench-perf/1` JSON document (newline-terminated;
/// validates under `python3 -m json.tool`).
pub fn perf_report_json(report: &PerfReport) -> String {
    fn suites(list: &[SuiteTiming]) -> String {
        list.iter()
            .map(|s| {
                format!(
                    "    {{\"name\": \"{}\", \"items\": {}, \"scalar_ns\": {}, \
                     \"kernel_ns\": {}, \"speedup\": {:.3}}}",
                    s.name,
                    s.items,
                    s.scalar_ns,
                    s.kernel_ns,
                    s.speedup()
                )
            })
            .collect::<Vec<_>>()
            .join(",\n")
    }
    format!(
        "{{\n  \"schema\": \"bench-perf/1\",\n  \"profile\": \"{}\",\n  \"seed\": {},\n  \
         \"kernels\": [\n{}\n  ],\n  \"end_to_end\": [\n{}\n  ]\n}}\n",
        report.profile,
        report.seed,
        suites(&report.kernels),
        suites(&report.end_to_end),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_profile_reports_every_suite_and_valid_json() {
        let report = run_quick(4242);
        let names: Vec<&str> = report.kernels.iter().map(|s| s.name).collect();
        for expected in [
            "pairwise_distance",
            "ones_fold",
            "ones_counter_block",
            "select",
            "pair_select",
            "transitions",
            "pair_counts",
            "window_counts_m3",
        ] {
            assert!(names.contains(&expected), "missing suite {expected}");
        }
        assert_eq!(report.end_to_end.len(), 1);
        assert_eq!(report.end_to_end[0].name, "streaming_assess");
        assert!(report.end_to_end[0].items > 0);

        let json = perf_report_json(&report);
        assert!(json.contains("\"schema\": \"bench-perf/1\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(!json.contains(",\n  ]"), "{json}");
        for s in report.kernels.iter().chain(&report.end_to_end) {
            assert!(s.scalar_ns > 0 && s.kernel_ns > 0, "{}", s.name);
            assert!(s.speedup().is_finite());
        }
    }
}
