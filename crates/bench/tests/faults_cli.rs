//! CLI-level fault-injection tests: a `campaign --faults PLAN` run must be
//! deterministic (same seed and plan → byte-identical records for any
//! `--threads`), survive checkpoint/resume unchanged, and refuse resuming
//! under a different plan. An empty plan must not change a byte.

use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("puffaults_cli_{}_{name}", std::process::id()))
}

fn campaign_args(out: &Path, seed: &str, threads: &str) -> Vec<String> {
    [
        "--out",
        out.to_str().unwrap(),
        "--format",
        "binary",
        "--boards",
        "4",
        "--months",
        "3",
        "--reads",
        "12",
        "--read-bits",
        "192",
        "--seed",
        seed,
        "--threads",
        threads,
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

fn run_campaign(extra: &[&str], base: Vec<String>) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(base)
        .args(extra)
        .output()
        .expect("campaign binary runs")
}

fn write_plan(name: &str, json: &str) -> PathBuf {
    let path = temp_path(name);
    std::fs::write(&path, json).expect("plan written");
    path
}

const PLAN: &str = r#"{
    "brownouts": [{"board": 1, "from_window": 1, "until_window": 1}],
    "i2c_bursts": [{
        "board": 2, "from_window": 0, "until_window": 2,
        "nack_rate": 0.3, "corruption_rate": 0.2
    }],
    "stuck_clusters": [{"board": 0, "cell": 8, "len": 16, "value": true, "from_window": 1}],
    "clock_skew": [{"layer": 0, "skew_s": 120.0}]
}"#;

#[test]
fn faulted_run_is_deterministic_across_thread_counts() {
    let plan = write_plan("det_plan.json", PLAN);
    let mut outputs = Vec::new();
    for threads in ["1", "2", "4"] {
        let out_file = temp_path(&format!("det_{threads}.pufrec"));
        let out = run_campaign(
            &["--faults", plan.to_str().unwrap()],
            campaign_args(&out_file, "55", threads),
        );
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("browned-out windows"),
            "fault tally missing from stderr"
        );
        outputs.push(std::fs::read(&out_file).expect("output written"));
        std::fs::remove_file(&out_file).ok();
    }
    assert_eq!(outputs[0], outputs[1], "1 vs 2 threads diverged");
    assert_eq!(outputs[0], outputs[2], "1 vs 4 threads diverged");
    std::fs::remove_file(&plan).ok();
}

#[test]
fn empty_fault_plan_changes_nothing() {
    let clean = temp_path("clean.pufrec");
    let out = run_campaign(&[], campaign_args(&clean, "56", "2"));
    assert!(out.status.success());
    let clean_bytes = std::fs::read(&clean).unwrap();

    let plan = write_plan("empty_plan.json", "{}");
    let faulted = temp_path("empty_faulted.pufrec");
    let out = run_campaign(
        &["--faults", plan.to_str().unwrap()],
        campaign_args(&faulted, "56", "2"),
    );
    assert!(out.status.success());
    assert_eq!(
        std::fs::read(&faulted).unwrap(),
        clean_bytes,
        "an empty plan must be byte-identical to no plan"
    );
    std::fs::remove_file(&clean).ok();
    std::fs::remove_file(&faulted).ok();
    std::fs::remove_file(&plan).ok();
}

#[test]
fn faulted_resume_is_byte_identical_to_the_uninterrupted_run() {
    let plan = write_plan("resume_plan.json", PLAN);
    let reference = temp_path("resume_ref.pufrec");
    let out = run_campaign(
        &["--faults", plan.to_str().unwrap()],
        campaign_args(&reference, "57", "2"),
    );
    assert!(out.status.success());
    let reference_bytes = std::fs::read(&reference).unwrap();

    let resumed = temp_path("resume_res.pufrec");
    let ckpt = temp_path("resume_ckpt");
    let out = run_campaign(
        &[
            "--faults",
            plan.to_str().unwrap(),
            "--checkpoint-out",
            ckpt.to_str().unwrap(),
            "--halt-after-windows",
            "2",
        ],
        campaign_args(&resumed, "57", "1"),
    );
    assert!(out.status.success());
    let out = run_campaign(
        &[
            "--faults",
            plan.to_str().unwrap(),
            "--resume-from",
            ckpt.to_str().unwrap(),
        ],
        campaign_args(&resumed, "57", "4"),
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&resumed).unwrap(),
        reference_bytes,
        "faulted resume diverged from the uninterrupted faulted run"
    );
    std::fs::remove_file(&reference).ok();
    std::fs::remove_file(&resumed).ok();
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&plan).ok();
}

#[test]
fn resume_under_a_different_plan_is_refused() {
    let plan = write_plan("swap_plan.json", PLAN);
    let out_file = temp_path("swap.pufrec");
    let ckpt = temp_path("swap_ckpt");
    let out = run_campaign(
        &[
            "--faults",
            plan.to_str().unwrap(),
            "--checkpoint-out",
            ckpt.to_str().unwrap(),
            "--halt-after-windows",
            "1",
        ],
        campaign_args(&out_file, "58", "2"),
    );
    assert!(out.status.success());
    // Resuming without the plan (or, equivalently, with a different one)
    // would splice two different campaigns into one record file.
    let out = run_campaign(
        &["--resume-from", ckpt.to_str().unwrap()],
        campaign_args(&out_file, "58", "2"),
    );
    assert!(!out.status.success(), "plan change must refuse the resume");
    assert!(String::from_utf8_lossy(&out.stderr).contains("config mismatch"));
    std::fs::remove_file(&out_file).ok();
    std::fs::remove_file(&ckpt).ok();
    std::fs::remove_file(&plan).ok();
}

#[test]
fn malformed_plan_is_a_clean_cli_error() {
    let plan = write_plan("bad_plan.json", r#"{"brownouts": [{"board": 1}]"#);
    let out_file = temp_path("bad.pufrec");
    let out = run_campaign(
        &["--faults", plan.to_str().unwrap()],
        campaign_args(&out_file, "59", "1"),
    );
    assert!(!out.status.success(), "malformed plan must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot load fault plan"));
    assert!(
        !out_file.exists(),
        "no output may be created for a bad plan"
    );
    std::fs::remove_file(&plan).ok();
}
