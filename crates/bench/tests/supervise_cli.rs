//! CLI-level tests of the storage fault layer, the `fsck` mode, and the
//! crash-restarting supervisor: a supervised campaign that keeps dying to
//! injected I/O faults must end with a record file byte-identical to an
//! unfaulted run, damaged checkpoint generations must be quarantined and
//! fallen back through, `convert --fsck` must report honest exit codes,
//! and the `io.*`/`supervisor.*` counters must satisfy their conservation
//! identities on real binary snapshots.

use puftestbed::store::json::{parse, JsonValue};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pufsup_cli_{}_{name}", std::process::id()))
}

fn write_plan(name: &str, body: &str) -> PathBuf {
    let path = temp_path(name);
    std::fs::write(&path, body).expect("plan written");
    path
}

fn campaign_args(out: &Path) -> Vec<String> {
    [
        "--out",
        out.to_str().unwrap(),
        "--format",
        "binary",
        "--boards",
        "3",
        "--months",
        "3",
        "--reads",
        "8",
        "--read-bits",
        "128",
        "--seed",
        "41",
        "--threads",
        "2",
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

fn run(bin: &str, args: &[String]) -> std::process::Output {
    Command::new(bin).args(args).output().expect("binary runs")
}

fn strs(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// Counters of a `pufobs/1` snapshot, via the workspace's own JSON parser.
fn counters(path: &Path) -> BTreeMap<String, u64> {
    let text = std::fs::read_to_string(path).expect("metrics file written");
    let value = parse(&text).expect("metrics file is valid JSON");
    let object = value.as_object().expect("snapshot is an object");
    let counters = object
        .iter()
        .find(|(k, _)| k == "counters")
        .and_then(|(_, v)| v.as_object())
        .expect("snapshot has counters");
    counters
        .iter()
        .map(|(k, v)| (k.clone(), v.as_u64().expect("counter is a u64")))
        .collect()
}

#[test]
fn supervised_faulted_campaign_is_byte_identical_to_a_clean_run() {
    let reference = temp_path("sup_ref.pufrec");
    let out = run(env!("CARGO_BIN_EXE_campaign"), &campaign_args(&reference));
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let reference_bytes = std::fs::read(&reference).expect("reference written");

    // An aggressive plan that disarms itself at incarnation 4, so the
    // supervised run provably terminates within the restart budget.
    let plan = write_plan(
        "sup_plan.json",
        r#"{"seed": 9, "torn_write_rate": 0.2, "fsync_failure_rate": 0.1,
            "rename_failure_rate": 0.1, "max_incarnations": 4}"#,
    );
    let faulted = temp_path("sup_faulted.pufrec");
    let ckpt = temp_path("sup_ck.pufchk");
    let metrics = temp_path("sup_metrics.json");
    let mut args = strs(&[
        "--max-restarts",
        "8",
        "--backoff-ms",
        "5",
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--",
        env!("CARGO_BIN_EXE_campaign"),
    ]);
    args.extend(campaign_args(&faulted));
    args.extend(strs(&[
        "--checkpoint-out",
        ckpt.to_str().unwrap(),
        "--checkpoint-keep",
        "2",
        "--io-faults",
        plan.to_str().unwrap(),
    ]));
    let out = run(env!("CARGO_BIN_EXE_supervise"), &args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");

    // The torture survivor matches the clean run byte for byte.
    let faulted_bytes = std::fs::read(&faulted).expect("supervised output written");
    assert_eq!(
        faulted_bytes, reference_bytes,
        "supervised faulted output must be byte-identical to a clean run"
    );

    // Supervisor conservation on the real snapshot: every restart is an
    // unclean child exit.
    let snap = counters(&metrics);
    assert_eq!(snap["supervisor.clean_exits"], 1, "{stderr}");
    assert_eq!(
        snap["supervisor.restarts"],
        snap["supervisor.child_exits"] - snap["supervisor.clean_exits"],
        "restarts == child exits - clean exits; {stderr}"
    );
}

#[test]
fn quarantined_checkpoint_falls_back_a_generation() {
    // Interrupt a campaign so real checkpoint generations exist.
    let out_path = temp_path("quar.pufrec");
    let ckpt = temp_path("quar_ck.pufchk");
    let mut args = campaign_args(&out_path);
    args.extend(strs(&[
        "--checkpoint-out",
        ckpt.to_str().unwrap(),
        "--checkpoint-keep",
        "3",
        "--halt-after-windows",
        "2",
    ]));
    let out = run(env!("CARGO_BIN_EXE_campaign"), &args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let older = PathBuf::from(format!("{}.1", ckpt.display()));
    assert!(ckpt.exists() && older.exists(), "two generations on disk");

    // Mangle the newest generation: the supervisor must quarantine it and
    // resume from the older one, still finishing byte-identical.
    let mut newest = std::fs::read(&ckpt).unwrap();
    let mid = newest.len() / 2;
    newest[mid] ^= 0xFF;
    std::fs::write(&ckpt, &newest).unwrap();

    let metrics = temp_path("quar_metrics.json");
    let mut args = strs(&[
        "--max-restarts",
        "3",
        "--backoff-ms",
        "5",
        "--metrics-out",
        metrics.to_str().unwrap(),
        "--",
        env!("CARGO_BIN_EXE_campaign"),
    ]);
    args.extend(campaign_args(&out_path));
    args.extend(strs(&[
        "--checkpoint-out",
        ckpt.to_str().unwrap(),
        "--checkpoint-keep",
        "3",
    ]));
    let out = run(env!("CARGO_BIN_EXE_supervise"), &args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert!(stderr.contains("quarantined"), "{stderr}");
    assert!(
        stderr.contains(&format!("resumes from {}.1", ckpt.display())),
        "{stderr}"
    );
    let snap = counters(&metrics);
    assert_eq!(snap["supervisor.checkpoints_quarantined"], 1);
    assert!(
        PathBuf::from(format!("{}.quarantined-0", ckpt.display())).exists(),
        "the damaged generation is preserved as evidence"
    );

    // And the final output still matches a clean, uninterrupted run.
    let reference = temp_path("quar_ref.pufrec");
    let out = run(env!("CARGO_BIN_EXE_campaign"), &campaign_args(&reference));
    assert!(out.status.success());
    assert_eq!(
        std::fs::read(&out_path).unwrap(),
        std::fs::read(&reference).unwrap()
    );
}

#[test]
fn fsck_exit_codes_are_honest() {
    // A clean file verifies clean: exit 0.
    let clean = temp_path("fsck_clean.pufrec");
    let out = run(env!("CARGO_BIN_EXE_campaign"), &campaign_args(&clean));
    assert!(out.status.success());
    let out = run(
        env!("CARGO_BIN_EXE_convert"),
        &strs(&["--fsck", "--in", clean.to_str().unwrap()]),
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Mangled, verify-only: damage detected, nothing repaired — exit 4.
    let mangled = temp_path("fsck_mangled.pufrec");
    let mut bytes = std::fs::read(&clean).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&mangled, &bytes).unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_convert"),
        &strs(&["--fsck", "--in", mangled.to_str().unwrap()]),
    );
    assert_eq!(
        out.status.code(),
        Some(4),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Mangled with --repair: damaged but salvaged — exit 1, and the
    // journal accounts for every byte of the damaged input.
    let repaired = temp_path("fsck_repaired.pufrec");
    let out = run(
        env!("CARGO_BIN_EXE_convert"),
        &strs(&[
            "--fsck",
            "--repair",
            "--in",
            mangled.to_str().unwrap(),
            "--out",
            repaired.to_str().unwrap(),
        ]),
    );
    assert_eq!(
        out.status.code(),
        Some(1),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let journal = std::fs::read_to_string(format!("{}.journal", repaired.display()))
        .expect("repair writes a journal");
    let journal = parse(&journal).expect("journal is valid JSON");
    let field = |name: &str| journal.get(name).and_then(JsonValue::as_u64).unwrap();
    assert_eq!(
        journal.get("format").and_then(JsonValue::as_str),
        Some("pufsck/1")
    );
    assert_eq!(field("bytes_total"), bytes.len() as u64);
    assert_eq!(
        field("bytes_kept") + field("bytes_dropped"),
        field("bytes_total")
    );
    let ranges: u64 = journal
        .get("dropped")
        .and_then(JsonValue::as_array)
        .unwrap()
        .iter()
        .map(|d| d.get("len").and_then(JsonValue::as_u64).unwrap())
        .sum();
    assert_eq!(ranges, field("bytes_dropped"));

    // The repaired file now verifies clean: exit 0.
    let out = run(
        env!("CARGO_BIN_EXE_convert"),
        &strs(&["--fsck", "--in", repaired.to_str().unwrap()]),
    );
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Usage errors: --repair without --fsck, and --repair without --out.
    let out = run(
        env!("CARGO_BIN_EXE_convert"),
        &strs(&["--repair", "--in", clean.to_str().unwrap()]),
    );
    assert_eq!(out.status.code(), Some(2));
    let out = run(
        env!("CARGO_BIN_EXE_convert"),
        &strs(&["--fsck", "--repair", "--in", clean.to_str().unwrap()]),
    );
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn io_counters_conserve_on_real_snapshots() {
    // Absorption: max_faults 0 absorbs every draw, so the run completes
    // with a byte-identical output while the ledger records the faults
    // that would have fired.
    // Rate 1.0 fires on every draw (rolls live in [0, 1)), making both
    // halves of this test independent of the pid-salted temp-file name
    // that the fault schedule is keyed on.
    let plan = write_plan(
        "absorb_plan.json",
        r#"{"seed": 5, "torn_write_rate": 1.0, "enospc_rate": 1.0,
            "fsync_failure_rate": 1.0, "rename_failure_rate": 1.0,
            "short_read_rate": 1.0, "max_faults": 0}"#,
    );
    let reference = temp_path("cons_ref.pufrec");
    let out = run(env!("CARGO_BIN_EXE_campaign"), &campaign_args(&reference));
    assert!(out.status.success());

    let absorbed_out = temp_path("cons_absorbed.pufrec");
    let metrics = temp_path("cons_metrics.json");
    let mut args = campaign_args(&absorbed_out);
    args.extend(strs(&[
        "--io-faults",
        plan.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]));
    let out = run(env!("CARGO_BIN_EXE_campaign"), &args);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&absorbed_out).unwrap(),
        std::fs::read(&reference).unwrap(),
        "absorbed faults must not change a byte"
    );
    let snap = counters(&metrics);
    assert!(snap["io.faults_absorbed"] > 0, "plan rates guarantee draws");
    assert_eq!(snap["io.faults_injected"], 0);
    assert_eq!(
        snap["io.faults_fired"],
        snap["io.faults_injected"] + snap["io.faults_absorbed"]
    );

    // Injection: an uncapped aggressive plan fails the run, and the
    // failure-path snapshot still balances the ledger by mechanism.
    let plan = write_plan("inject_plan.json", r#"{"seed": 5, "torn_write_rate": 1.0}"#);
    let injected_out = temp_path("cons_injected.pufrec");
    let metrics = temp_path("cons_inject_metrics.json");
    let mut args = campaign_args(&injected_out);
    args.extend(strs(&[
        "--io-faults",
        plan.to_str().unwrap(),
        "--metrics-out",
        metrics.to_str().unwrap(),
    ]));
    let out = run(env!("CARGO_BIN_EXE_campaign"), &args);
    assert!(!out.status.success(), "a 1.0 torn-write rate must fire");
    let snap = counters(&metrics);
    assert!(snap["io.faults_injected"] > 0);
    assert_eq!(
        snap["io.faults_fired"],
        snap["io.faults_injected"] + snap["io.faults_absorbed"]
    );
    assert_eq!(
        snap["io.faults_injected"],
        snap["io.torn_writes"]
            + snap["io.short_reads"]
            + snap["io.enospc"]
            + snap["io.fsync_failures"]
            + snap["io.rename_failures"],
        "every injected fault is attributed to exactly one mechanism"
    );
}
