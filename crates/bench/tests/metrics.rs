//! Statistical regression tests for the `pufobs` observability layer:
//! the `--metrics-out` snapshots of the CLI binaries must satisfy the
//! pipeline's conservation invariants, and instrumentation must never
//! change a byte of the actual output.

use puftestbed::store::json::{parse, JsonValue};
use std::collections::BTreeMap;
use std::process::Command;

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pufbench_metrics_{}_{name}", std::process::id()))
}

/// A metrics snapshot decoded from the `pufobs/1` JSON schema via the
/// workspace's own parser — proving the snapshot format round-trips
/// through `puftestbed::store::json`.
struct Snapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histogram_counts: BTreeMap<String, u64>,
}

impl Snapshot {
    fn load(path: &std::path::Path) -> Self {
        let text = std::fs::read_to_string(path).expect("metrics file written");
        let value = parse(&text).expect("metrics file is valid JSON");
        let object = value.as_object().expect("snapshot is an object");
        let field = |name: &str| -> Option<&JsonValue> {
            object.iter().find(|(k, _)| k == name).map(|(_, v)| v)
        };
        assert_eq!(
            field("schema").and_then(JsonValue::as_str),
            Some("pufobs/1"),
            "unexpected snapshot schema"
        );
        let mut counters = BTreeMap::new();
        for (name, v) in field("counters").and_then(JsonValue::as_object).unwrap() {
            counters.insert(name.clone(), v.as_u64().expect("counter is a u64"));
        }
        let mut gauges = BTreeMap::new();
        for (name, v) in field("gauges").and_then(JsonValue::as_object).unwrap() {
            gauges.insert(name.clone(), v.as_i64().expect("gauge is an i64"));
        }
        let mut histogram_counts = BTreeMap::new();
        for (name, v) in field("histograms").and_then(JsonValue::as_object).unwrap() {
            let entries = v.as_object().expect("histogram is an object");
            let count = entries
                .iter()
                .find(|(k, _)| k == "count")
                .and_then(|(_, v)| v.as_u64())
                .expect("histogram has a count");
            histogram_counts.insert(name.clone(), count);
        }
        Self {
            counters,
            gauges,
            histogram_counts,
        }
    }

    fn counter(&self, name: &str) -> u64 {
        *self
            .counters
            .get(name)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    }
}

#[test]
fn repro_metrics_satisfy_the_conservation_invariants() {
    let metrics = temp_path("repro.json");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--scale",
            "smoke",
            "--seed",
            "7",
            "--threads",
            "3",
            "--table1",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let snap = Snapshot::load(&metrics);
    std::fs::remove_file(&metrics).ok();

    // Every record the campaign emitted reached the accumulator, and every
    // record the accumulator saw was either folded or skipped.
    assert_eq!(
        snap.counter("campaign.records"),
        snap.counter("assess.records_seen")
    );
    assert_eq!(
        snap.counter("assess.records_seen"),
        snap.counter("assess.records_folded") + snap.counter("assess.records_skipped")
    );

    // Per-board power-cycle counters partition the campaign total, which is
    // exactly boards × windows × reads at smoke scale (4 × 7 × 50).
    let per_board: u64 = snap
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("campaign.board") && name.ends_with(".power_cycles"))
        .map(|(_, &v)| v)
        .sum();
    assert_eq!(per_board, snap.counter("campaign.power_cycles"));
    assert_eq!(snap.counter("campaign.power_cycles"), 4 * 7 * 50);

    // Each of the 4 board shards timed each of the 7 windows once.
    assert_eq!(snap.counter("campaign.shard_windows"), 4 * 7);
    assert_eq!(snap.histogram_counts["campaign.shard_window_ns"], 4 * 7);
    assert_eq!(snap.counter("campaign.windows"), 7);

    // No transport faults were injected, so none may be counted.
    assert_eq!(snap.counter("campaign.dropped"), 0);
    assert_eq!(snap.counter("campaign.i2c_faults"), 0);
}

#[test]
fn assess_metrics_balance_the_reader_ledger() {
    let records = temp_path("ledger.jsonl");
    let metrics = temp_path("assess.json");
    let out = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args([
            "--out",
            records.to_str().unwrap(),
            "--boards",
            "3",
            "--months",
            "1",
            "--reads",
            "20",
            "--read-bits",
            "256",
            "--seed",
            "11",
        ])
        .output()
        .expect("campaign runs");
    assert!(out.status.success());

    let out = Command::new(env!("CARGO_BIN_EXE_assess"))
        .args([
            "--in",
            records.to_str().unwrap(),
            "--reads",
            "20",
            "--threads",
            "2",
            "--batch-lines",
            "16",
            "--metrics-out",
            metrics.to_str().unwrap(),
        ])
        .output()
        .expect("assess runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let snap = Snapshot::load(&metrics);
    std::fs::remove_file(&records).ok();
    std::fs::remove_file(&metrics).ok();

    // The reader ledger balances: every line was parsed or flagged, every
    // dispatched batch was drained, and every parsed record reached the
    // accumulator. 3 boards × 2 windows × 20 reads = 120 clean lines.
    assert_eq!(
        snap.counter("reader.lines_read"),
        snap.counter("reader.records_parsed") + snap.counter("reader.malformed_lines")
    );
    assert_eq!(snap.counter("reader.lines_read"), 120);
    assert_eq!(snap.counter("reader.malformed_lines"), 0);
    assert_eq!(snap.counter("reader.io_errors"), 0);
    assert_eq!(snap.gauges["reader.queue_depth"], 0);
    assert_eq!(
        snap.counter("reader.batches"),
        snap.histogram_counts["reader.batch_parse_ns"]
    );
    assert_eq!(
        snap.counter("reader.records_parsed"),
        snap.counter("assess.records_seen")
    );
    assert_eq!(
        snap.counter("assess.records_seen"),
        snap.counter("assess.records_folded") + snap.counter("assess.records_skipped")
    );
}

#[test]
fn instrumentation_does_not_change_a_byte_of_output() {
    // The same campaign with and without `--metrics-out --verbose` must
    // write identical record files, and the same repro invocation must
    // print identical artifacts.
    let common = [
        "--boards",
        "3",
        "--months",
        "1",
        "--reads",
        "15",
        "--read-bits",
        "200",
        "--seed",
        "23",
        "--nack-rate",
        "0.05",
    ];
    let mut files = Vec::new();
    for instrumented in [false, true] {
        let records = temp_path(&format!("bytes_{instrumented}.jsonl"));
        let metrics = temp_path(&format!("bytes_{instrumented}.json"));
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_campaign"));
        cmd.args(["--out", records.to_str().unwrap()]).args(common);
        if instrumented {
            cmd.args(["--metrics-out", metrics.to_str().unwrap(), "--verbose"]);
        }
        let out = cmd.output().expect("campaign runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        files.push(std::fs::read(&records).expect("records written"));
        std::fs::remove_file(&records).ok();
        std::fs::remove_file(&metrics).ok();
    }
    assert!(!files[0].is_empty());
    assert_eq!(
        files[0], files[1],
        "instrumentation changed the record file"
    );

    let mut stdouts = Vec::new();
    for instrumented in [false, true] {
        let metrics = temp_path(&format!("repro_bytes_{instrumented}.json"));
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
        cmd.args(["--scale", "smoke", "--seed", "23", "--table1", "--fig6"]);
        if instrumented {
            cmd.args(["--metrics-out", metrics.to_str().unwrap(), "--verbose"]);
        }
        let out = cmd.output().expect("repro runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        stdouts.push(out.stdout);
        std::fs::remove_file(&metrics).ok();
    }
    assert!(!stdouts[0].is_empty());
    assert_eq!(
        stdouts[0], stdouts[1],
        "instrumentation changed the printed artifacts"
    );
}
