//! Golden-file regression tests: the fixed-seed smoke-scale pipeline must
//! reproduce the committed Table I, aggregate CSV, and Fig. 6 summary
//! *string-exactly*. Any drift in the cell model, campaign engine, merge
//! order, statistics, or report formatting shows up as a diff here.
//!
//! When an intentional change moves the numbers, regenerate the files and
//! review the diff like any other code change:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test -p pufbench --test golden
//! ```

use pufassess::report::{self, Series};
use pufbench::{run_assessment_streaming, Scale};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` against the committed golden file, or rewrites the
/// file when `GOLDEN_UPDATE=1` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with GOLDEN_UPDATE=1 cargo test -p pufbench --test golden",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from the golden copy; if the change is intentional, \
         regenerate with GOLDEN_UPDATE=1 and review the diff",
    );
}

#[test]
fn fixed_seed_smoke_pipeline_matches_the_golden_files() {
    // Two threads on purpose: the goldens also lock in that the sharded
    // campaign and the deterministic merge stay thread-count invariant.
    let assessment = run_assessment_streaming(Scale::Smoke, 2017, 2);

    check_golden("table1.txt", &assessment.table1().render());
    check_golden("aggregates.csv", &report::aggregate_csv(&assessment));
    check_golden(
        "fig6_wchd.txt",
        &report::fig6_text(&assessment, Series::Wchd, 40),
    );
}
