//! Property tests: the assessment is a pure function of the record
//! *content* — the reader's `--batch-lines`, the parser thread count, and
//! the campaign's shard count must never change a single statistic.

use proptest::prelude::*;
use pufassess::monthly::EvaluationProtocol;
use pufassess::streaming::WindowAccumulator;
use pufassess::Assessment;
use puftestbed::store::{JsonLinesSink, ParallelRecordReader};
use puftestbed::{Campaign, CampaignConfig};
use std::io::Cursor;
use std::sync::OnceLock;

const READS: u32 = 12;

fn protocol() -> EvaluationProtocol {
    EvaluationProtocol {
        reads_per_window: READS,
        ..EvaluationProtocol::default()
    }
}

fn fixture_config() -> CampaignConfig {
    CampaignConfig {
        boards: 3,
        sram_bits: 192,
        read_bits: 192,
        months: 2,
        reads_per_window: READS,
        ..CampaignConfig::default()
    }
}

fn campaign_bytes(threads: usize) -> Vec<u8> {
    let mut sink = JsonLinesSink::new(Vec::new());
    Campaign::new(fixture_config(), 77)
        .threads(threads)
        .run(&mut sink)
        .expect("vec sink cannot fail");
    sink.into_inner().expect("vec flush cannot fail")
}

/// Streams `bytes` through the parallel reader with the given shape and
/// folds every record into a fresh accumulator.
fn assess_with(bytes: &[u8], threads: usize, batch_lines: usize) -> Assessment {
    let reader = ParallelRecordReader::spawn(Cursor::new(bytes.to_vec()), threads, batch_lines);
    let mut accumulator = WindowAccumulator::new(protocol());
    for item in reader {
        accumulator.push(&item.expect("fixture contains no malformed lines"));
    }
    accumulator.finish().expect("fixture is assessable")
}

/// The shared fixture: serialized records plus the single-threaded,
/// single-batch baseline assessment every case must reproduce.
fn fixture() -> &'static (Vec<u8>, usize, Assessment) {
    static FIXTURE: OnceLock<(Vec<u8>, usize, Assessment)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let bytes = campaign_bytes(1);
        let lines = bytes.iter().filter(|&&b| b == b'\n').count();
        let baseline = assess_with(&bytes, 1, lines);
        (bytes, lines, baseline)
    })
}

#[test]
fn named_batch_shapes_agree_with_the_baseline() {
    // The shapes called out in the regression report: one line at a time,
    // an uneven prime stride, and everything in a single batch.
    let (bytes, lines, baseline) = fixture();
    for batch_lines in [1, 7, *lines] {
        for threads in [1, 4] {
            assert_eq!(
                &assess_with(bytes, threads, batch_lines),
                baseline,
                "batch_lines={batch_lines} threads={threads} changed the assessment"
            );
        }
    }
}

#[test]
fn campaign_shard_count_does_not_change_the_assessment() {
    let (bytes, _, baseline) = fixture();
    for threads in [2, 4] {
        let sharded = campaign_bytes(threads);
        assert_eq!(
            &sharded[..],
            &bytes[..],
            "{threads} campaign shards changed the record bytes"
        );
        assert_eq!(&assess_with(&sharded, 2, 5), baseline);
    }
}

proptest! {
    #[test]
    fn assessment_is_invariant_to_reader_shape(batch_lines in 1usize..40, threads in 1usize..5) {
        let (bytes, _, baseline) = fixture();
        prop_assert_eq!(&assess_with(bytes, threads, batch_lines), baseline);
    }
}
