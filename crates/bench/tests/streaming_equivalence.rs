//! The streaming pipeline must be indistinguishable from the in-memory
//! one: same `Assessment` (bit-for-bit floats), same Table I text, same
//! CSVs — on a faulty multi-month campaign and through the full JSON-lines
//! disk format with the parallel parser.

use pufassess::monthly::EvaluationProtocol;
use pufassess::streaming::WindowAccumulator;
use pufassess::{report, Assessment};
use puftestbed::store::{ParallelRecordReader, RecordSink};
use puftestbed::{Campaign, CampaignConfig, Dataset};
use std::io::Cursor;

fn faulty_campaign() -> Dataset {
    let config = CampaignConfig {
        boards: 4,
        sram_bits: 1024,
        read_bits: 1024,
        months: 3,
        reads_per_window: 30,
        // Transport faults on: dropped and retried read-outs must not
        // desynchronise the streaming accumulation.
        i2c_nack_rate: 0.05,
        i2c_corruption_rate: 0.02,
        ..CampaignConfig::default()
    };
    Campaign::new(config, 71).run_in_memory()
}

fn protocol() -> EvaluationProtocol {
    EvaluationProtocol {
        reads_per_window: 30,
        ..EvaluationProtocol::default()
    }
}

#[test]
fn streaming_matches_in_memory_on_a_faulty_campaign() {
    let dataset = faulty_campaign();
    let in_memory = Assessment::from_records(dataset.records(), &protocol()).unwrap();
    let streamed = Assessment::from_record_stream(dataset.records(), &protocol()).unwrap();
    assert_eq!(in_memory, streamed);
    assert_eq!(in_memory.table1().render(), streamed.table1().render());
    assert_eq!(
        report::device_series_csv(&in_memory),
        report::device_series_csv(&streamed)
    );
    assert_eq!(
        report::aggregate_csv(&in_memory),
        report::aggregate_csv(&streamed)
    );
}

#[test]
fn streaming_matches_through_the_json_store_and_parallel_parser() {
    let dataset = faulty_campaign();
    let in_memory = Assessment::from_records(dataset.records(), &protocol()).unwrap();

    let mut sink = puftestbed::store::JsonLinesSink::new(Vec::new());
    for r in dataset.records() {
        sink.record(r).unwrap();
    }
    let bytes = sink.into_inner().unwrap();

    for threads in [1, 4] {
        let reader = ParallelRecordReader::spawn(Cursor::new(bytes.clone()), threads, 64);
        let mut accumulator = WindowAccumulator::new(protocol());
        for item in reader {
            accumulator.push(&item.expect("no malformed lines in a fresh store"));
        }
        assert_eq!(accumulator.skipped_width_mismatch(), 0);
        let streamed = accumulator.finish().unwrap();
        assert_eq!(in_memory, streamed, "threads={threads}");
    }
}
