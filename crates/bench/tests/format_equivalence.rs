//! End-to-end format equivalence: the same campaign written as JSON lines
//! and as `pufrec/1` binary — plus a `convert`ed copy — must assess to
//! byte-identical output, and the binary file must actually be smaller.

use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pufbench_fmt_{}_{name}", std::process::id()))
}

const CAMPAIGN_ARGS: [&str; 10] = [
    "--boards",
    "3",
    "--months",
    "2",
    "--reads",
    "12",
    "--read-bits",
    "256",
    "--seed",
    "77",
];

fn run_campaign(out: &Path, format: &str) {
    let output = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(["--out", out.to_str().unwrap(), "--format", format])
        .args(CAMPAIGN_ARGS)
        .output()
        .expect("campaign runs");
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

/// Assesses `input` and returns `(stdout, devices_csv, aggregates_csv)`.
fn assess(input: &Path, csv_prefix: &Path) -> (Vec<u8>, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_assess"))
        .args([
            "--in",
            input.to_str().unwrap(),
            "--reads",
            "12",
            "--csv",
            csv_prefix.to_str().unwrap(),
        ])
        .output()
        .expect("assess runs");
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let devices = format!("{}_devices.csv", csv_prefix.display());
    let aggregates = format!("{}_aggregates.csv", csv_prefix.display());
    let result = (
        output.stdout,
        std::fs::read_to_string(&devices).expect("devices csv written"),
        std::fs::read_to_string(&aggregates).expect("aggregates csv written"),
    );
    std::fs::remove_file(devices).ok();
    std::fs::remove_file(aggregates).ok();
    result
}

#[test]
fn both_formats_and_the_converted_file_assess_byte_identically() {
    let json = temp_path("records.jsonl");
    let binary = temp_path("records.pufrec");
    let converted = temp_path("converted.pufrec");

    run_campaign(&json, "json");
    run_campaign(&binary, "binary");

    let output = Command::new(env!("CARGO_BIN_EXE_convert"))
        .args([
            "--in",
            json.to_str().unwrap(),
            "--out",
            converted.to_str().unwrap(),
            "--format",
            "binary",
        ])
        .output()
        .expect("convert runs");
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );

    // The directly-written and converted binary files differ only in the
    // header's advisory declared-bits field (campaign knows the width,
    // convert does not), so equivalence is checked where it matters: the
    // assessment output.
    let from_json = assess(&json, &temp_path("csv_json"));
    let from_binary = assess(&binary, &temp_path("csv_binary"));
    let from_converted = assess(&converted, &temp_path("csv_converted"));
    assert_eq!(
        from_json, from_binary,
        "assessment differs between storage formats"
    );
    assert_eq!(
        from_json, from_converted,
        "assessment differs after conversion"
    );
    assert!(from_json.0.windows(7).any(|w| w == b"Table I"));

    // The honest size story: raw bytes halve the hex-dominated JSON. The
    // margin (1.9x) sits safely under the real ~2x so the assertion holds
    // at any read width.
    let json_len = std::fs::metadata(&json).unwrap().len();
    let binary_len = std::fs::metadata(&binary).unwrap().len();
    assert!(
        json_len > binary_len * 19 / 10,
        "expected the binary store to be ~2x smaller: json {json_len}, binary {binary_len}"
    );

    for f in [&json, &binary, &converted] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn converted_output_is_byte_identical_across_threads_and_batch_sizes() {
    // The parallel JSON reader reuses per-worker scratch across batches;
    // this must never leak state between records. Converting the same
    // corpus under extreme threading/batching choices has to produce the
    // same bytes — including batch size 1, where every record crosses a
    // scratch-reset boundary.
    let json = temp_path("reconv.jsonl");
    run_campaign(&json, "json");

    let mut outputs = Vec::new();
    for (threads, batch) in [("1", "1"), ("4", "64"), ("2", "3")] {
        let out = temp_path(&format!("reconv_t{threads}_b{batch}.pufrec"));
        let output = Command::new(env!("CARGO_BIN_EXE_convert"))
            .args([
                "--in",
                json.to_str().unwrap(),
                "--out",
                out.to_str().unwrap(),
                "--format",
                "binary",
                "--threads",
                threads,
                "--batch",
                batch,
            ])
            .output()
            .expect("convert runs");
        assert!(
            output.status.success(),
            "{}",
            String::from_utf8_lossy(&output.stderr)
        );
        outputs.push(std::fs::read(&out).expect("converted file"));
        std::fs::remove_file(&out).ok();
    }
    assert_eq!(
        outputs[0], outputs[1],
        "thread/batch choice changed the converted bytes"
    );
    assert_eq!(
        outputs[0], outputs[2],
        "thread/batch choice changed the converted bytes"
    );

    std::fs::remove_file(&json).ok();
}

#[test]
fn forcing_the_format_flag_matches_auto_detection() {
    let binary = temp_path("forced.pufrec");
    run_campaign(&binary, "binary");

    let auto = assess(&binary, &temp_path("csv_auto"));
    let output = Command::new(env!("CARGO_BIN_EXE_assess"))
        .args([
            "--in",
            binary.to_str().unwrap(),
            "--reads",
            "12",
            "--format",
            "binary",
        ])
        .output()
        .expect("assess runs");
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert_eq!(auto.0, output.stdout);

    std::fs::remove_file(&binary).ok();
}

#[test]
fn convert_refuses_corrupt_input_instead_of_writing_a_prefix() {
    let binary = temp_path("damaged.pufrec");
    let out = temp_path("damaged_out.jsonl");
    run_campaign(&binary, "binary");

    // Flip one byte in the middle of the record region.
    let mut bytes = std::fs::read(&binary).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&binary, bytes).unwrap();

    let output = Command::new(env!("CARGO_BIN_EXE_convert"))
        .args([
            "--in",
            binary.to_str().unwrap(),
            "--out",
            out.to_str().unwrap(),
            "--format",
            "json",
        ])
        .output()
        .expect("convert runs");
    assert!(
        !output.status.success(),
        "convert must fail loudly on corrupt input"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("record"), "{stderr}");
    assert!(
        !out.exists(),
        "an aborted conversion must delete its partial output"
    );

    std::fs::remove_file(&binary).ok();
    std::fs::remove_file(&out).ok();
}
