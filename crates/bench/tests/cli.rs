//! Integration tests for the `campaign` / `assess` / `repro` binaries.

use std::process::Command;

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pufbench_cli_{}_{name}", std::process::id()))
}

#[test]
fn campaign_then_assess_round_trip() {
    let records = temp_path("records.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args([
            "--out",
            records.to_str().unwrap(),
            "--boards",
            "3",
            "--months",
            "1",
            "--reads",
            "15",
            "--read-bits",
            "256",
            "--seed",
            "99",
        ])
        .output()
        .expect("campaign runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("90 records"), "{stderr}");

    let out = Command::new(env!("CARGO_BIN_EXE_assess"))
        .args(["--in", records.to_str().unwrap(), "--reads", "15"])
        .output()
        .expect("assess runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table I"), "{stdout}");
    assert!(stdout.contains("WCHD"));
    assert!(stdout.contains("fitted hidden-variable model"));
    std::fs::remove_file(&records).ok();
}

#[test]
fn assess_writes_csv_artifacts() {
    let records = temp_path("csv_records.jsonl");
    let prefix = temp_path("csv_out");
    Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args([
            "--out",
            records.to_str().unwrap(),
            "--boards",
            "2",
            "--months",
            "1",
            "--reads",
            "10",
            "--read-bits",
            "128",
        ])
        .output()
        .expect("campaign runs");
    let out = Command::new(env!("CARGO_BIN_EXE_assess"))
        .args([
            "--in",
            records.to_str().unwrap(),
            "--reads",
            "10",
            "--csv",
            prefix.to_str().unwrap(),
        ])
        .output()
        .expect("assess runs");
    assert!(out.status.success());
    let devices_csv = format!("{}_devices.csv", prefix.display());
    let contents = std::fs::read_to_string(&devices_csv).expect("csv written");
    assert!(contents.starts_with("device,month"));
    std::fs::remove_file(&records).ok();
    std::fs::remove_file(devices_csv).ok();
    std::fs::remove_file(format!("{}_aggregates.csv", prefix.display())).ok();
}

#[test]
fn repro_smoke_produces_all_artifacts() {
    let out_dir = temp_path("repro_out");
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--scale", "smoke", "--all", "--seed", "5"])
        .args(["--out-dir", out_dir.to_str().unwrap()])
        .current_dir(std::env::temp_dir())
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for artifact in [
        "Fig. 3",
        "Fig. 4",
        "Fig. 5",
        "Fig. 6",
        "Table I",
        "accelerated",
    ] {
        assert!(stdout.contains(artifact), "missing {artifact}");
    }
    // The pgm lands under --out-dir, never in the working directory.
    assert!(out_dir.join("fig4_startup_pattern.pgm").exists());
    assert!(!std::env::temp_dir()
        .join("fig4_startup_pattern.pgm")
        .exists());
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn campaign_threads_flag_is_record_identical() {
    let common = [
        "--boards",
        "5",
        "--months",
        "1",
        "--reads",
        "12",
        "--read-bits",
        "200",
        "--seed",
        "44",
        "--nack-rate",
        "0.05",
    ];
    let mut files = Vec::new();
    for threads in ["1", "4"] {
        let records = temp_path(&format!("threads{threads}.jsonl"));
        let out = Command::new(env!("CARGO_BIN_EXE_campaign"))
            .args(["--out", records.to_str().unwrap(), "--threads", threads])
            .args(common)
            .output()
            .expect("campaign runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        files.push(std::fs::read(&records).expect("records written"));
        std::fs::remove_file(&records).ok();
    }
    assert!(!files[0].is_empty());
    assert_eq!(files[0], files[1], "thread count changed the record bytes");
}

#[test]
fn assess_accepts_threads_flag() {
    let records = temp_path("assess_threads.jsonl");
    Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args([
            "--out",
            records.to_str().unwrap(),
            "--boards",
            "2",
            "--months",
            "1",
            "--reads",
            "10",
            "--read-bits",
            "128",
        ])
        .output()
        .expect("campaign runs");
    let out = Command::new(env!("CARGO_BIN_EXE_assess"))
        .args([
            "--in",
            records.to_str().unwrap(),
            "--reads",
            "10",
            "--threads",
            "3",
        ])
        .output()
        .expect("assess runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("Table I"));
    std::fs::remove_file(&records).ok();
}

#[test]
fn binaries_reject_bad_arguments() {
    let out = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(["--bogus"])
        .output()
        .expect("campaign runs");
    assert!(!out.status.success());
    let out = Command::new(env!("CARGO_BIN_EXE_assess"))
        .output()
        .expect("assess runs");
    assert!(!out.status.success());
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--scale", "galactic"])
        .output()
        .expect("repro runs");
    assert!(!out.status.success());
    let out = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(["--out", "/dev/null", "--threads", "0"])
        .output()
        .expect("campaign runs");
    assert!(!out.status.success());
}
