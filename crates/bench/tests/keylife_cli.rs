//! CLI-level tests of the `keylife` binary: the fixed-seed faulted
//! pipeline reproduces the committed golden table *string-exactly*
//! (regenerate with `GOLDEN_UPDATE=1 cargo test -p pufbench --test
//! keylife_cli`), the output is byte-identical for every `--threads` value
//! and across the two storage formats, corrupt input is refused rather
//! than silently truncated, and the observed failure rates stay consistent
//! with the analytic WCHD bound.

use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pufkeylife_cli_{}_{name}", std::process::id()))
}

/// Board 1 loses window 2 whole; board 2 suffers an I2C burst. The golden
/// table therefore locks the erasure accounting, not just the happy path.
const PLAN: &str = r#"{
    "brownouts": [{"board": 1, "from_window": 2, "until_window": 2}],
    "i2c_bursts": [{
        "board": 2, "from_window": 1, "until_window": 3,
        "nack_rate": 0.4, "corruption_rate": 0.2
    }]
}"#;

/// Runs the fixed-seed faulted campaign once per format, caching the
/// record files for every test in the process (the lock keeps parallel
/// tests from generating the same file twice).
fn record_file(format: &str) -> PathBuf {
    static GENERATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = GENERATE.lock().unwrap();
    let out = temp_path(&format!("records_{format}"));
    if out.exists() {
        return out;
    }
    let plan = temp_path("plan.json");
    std::fs::write(&plan, PLAN).expect("plan written");
    let status = Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args([
            "--out",
            out.to_str().unwrap(),
            "--format",
            format,
            "--boards",
            "4",
            "--months",
            "6",
            "--reads",
            "20",
            "--read-bits",
            "1024",
            "--seed",
            "2017",
            "--faults",
            plan.to_str().unwrap(),
        ])
        .status()
        .expect("campaign binary runs");
    assert!(status.success());
    out
}

fn keylife(input: &Path, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_keylife"))
        .args([
            "--in",
            input.to_str().unwrap(),
            "--reads",
            "20",
            "--profiles",
            "golay-r5@12,polar-128-16@16",
            "--seed",
            "7",
        ])
        .args(extra)
        .output()
        .expect("keylife binary runs")
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_UPDATE").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("golden dir");
        std::fs::write(&path, actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); regenerate with GOLDEN_UPDATE=1 cargo test -p pufbench --test keylife_cli",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "{name} drifted from the golden copy; if the change is intentional, \
         regenerate with GOLDEN_UPDATE=1 and review the diff",
    );
}

#[test]
fn fixed_seed_faulted_table_matches_the_golden_file() {
    let out = keylife(&record_file("json"), &["--threads", "2"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    check_golden(
        "keylife_table.txt",
        &String::from_utf8(out.stdout).expect("utf-8 table"),
    );
}

#[test]
fn output_is_byte_identical_across_threads_and_formats() {
    let mut outputs = Vec::new();
    for threads in ["1", "3", "7"] {
        let csv = temp_path(&format!("inv_{threads}.csv"));
        let out = keylife(
            &record_file("json"),
            &["--threads", threads, "--csv", csv.to_str().unwrap()],
        );
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push((out.stdout, std::fs::read(&csv).expect("csv written")));
    }
    let binary = keylife(&record_file("binary"), &["--threads", "2"]);
    assert!(binary.status.success());
    for (stdout, csv) in &outputs {
        assert_eq!(stdout, &outputs[0].0, "thread count changed the table");
        assert_eq!(csv, &outputs[0].1, "thread count changed the CSV");
    }
    assert_eq!(
        binary.stdout, outputs[0].0,
        "storage format changed the table"
    );
}

#[test]
fn output_is_byte_identical_across_batch_sizes() {
    // `--batch-lines` only changes how many lines each decode worker takes
    // per lock acquisition — and therefore where the scratch-reusing fast
    // parser's buffers reset. Batch size 1 forces a reset per record; the
    // report must not move by a byte.
    let mut outputs = Vec::new();
    for batch in ["1", "5", "256"] {
        let out = keylife(
            &record_file("json"),
            &["--threads", "3", "--batch-lines", batch],
        );
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push(out.stdout);
    }
    assert_eq!(outputs[0], outputs[1], "batch size changed the table");
    assert_eq!(outputs[0], outputs[2], "batch size changed the table");
}

#[test]
fn observed_rates_are_consistent_with_the_analytic_bound() {
    let csv = temp_path("bound.csv");
    let out = keylife(&record_file("json"), &["--csv", csv.to_str().unwrap()]);
    assert!(out.status.success());
    let csv = std::fs::read_to_string(&csv).expect("csv written");
    let mut golay_rows = 0;
    for line in csv.lines().skip(1) {
        let fields: Vec<&str> = line.split(',').collect();
        let (profile, attempts, failures, bound) = (fields[0], fields[6], fields[7], fields[11]);
        if profile.starts_with("golay") && attempts != "0" {
            golay_rows += 1;
            let attempts: f64 = attempts.parse().unwrap();
            let failures: f64 = failures.parse().unwrap();
            let bound: f64 = bound.parse().expect("golay rows carry a bound");
            // The analytic bound at this month's worst-case WCHD is tiny
            // (≪ 1/attempts), so a consistent observation is zero decode
            // failures — anything more would be a >10⁶σ event.
            assert!(bound < 1e-6, "bound {bound} unexpectedly large");
            assert!(
                failures / attempts <= bound.max(0.5 / attempts),
                "observed {failures}/{attempts} inconsistent with bound {bound}"
            );
        }
        if profile.starts_with("polar") {
            assert_eq!(fields[11], "-", "polar has no analytic bound");
        }
    }
    assert!(golay_rows > 0, "no golay rows in {csv}");
}

#[test]
fn corrupt_input_is_refused_not_truncated() {
    // A record file with a torn line in the middle: statistics over the
    // readable prefix would silently understate the failure rate.
    let source = std::fs::read_to_string(record_file("json")).expect("records readable");
    let mut lines: Vec<&str> = source.lines().collect();
    let mid = lines.len() / 2;
    lines[mid] = "{\"torn\": tru";
    let corrupt = temp_path("corrupt.jsonl");
    std::fs::write(&corrupt, lines.join("\n")).expect("corrupt file written");

    let out = keylife(&corrupt, &[]);
    assert!(!out.status.success(), "corrupt input must be refused");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("refusing corrupt input"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn bad_arguments_are_rejected() {
    let out = keylife(&record_file("json"), &["--profiles", "bch-63"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("invalid key profile"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = Command::new(env!("CARGO_BIN_EXE_keylife"))
        .args(["--threads", "2"])
        .output()
        .expect("keylife binary runs");
    assert!(!out.status.success(), "--in is required");
}
