//! CLI-level checkpoint/resume tests: an interrupted `campaign` run,
//! resumed from its `pufchk/1` checkpoint, must write a record file
//! byte-identical to the uninterrupted run — across output formats and
//! thread counts — and refuse mismatched or damaged checkpoints.

use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pufchk_cli_{}_{name}", std::process::id()))
}

fn campaign_args(out: &Path, format: &str, seed: &str, threads: &str) -> Vec<String> {
    [
        "--out",
        out.to_str().unwrap(),
        "--format",
        format,
        "--boards",
        "4",
        "--months",
        "3",
        "--reads",
        "12",
        "--read-bits",
        "192",
        "--seed",
        seed,
        "--nack-rate",
        "0.05",
        "--threads",
        threads,
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

fn run_campaign(extra: &[&str], base: Vec<String>) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_campaign"))
        .args(base)
        .args(extra)
        .output()
        .expect("campaign binary runs")
}

#[test]
fn interrupted_then_resumed_run_is_byte_identical() {
    for format in ["json", "binary"] {
        let reference = temp_path(&format!("ref.{format}"));
        let out = run_campaign(&[], campaign_args(&reference, format, "77", "2"));
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let reference_bytes = std::fs::read(&reference).expect("reference written");

        for (threads_before, threads_after) in [("1", "4"), ("4", "1")] {
            let resumed = temp_path(&format!("res_{threads_before}{threads_after}.{format}"));
            let ckpt = temp_path(&format!("ckpt_{threads_before}{threads_after}.{format}"));
            // Run 2 of the 4 windows, checkpointing every window, then halt.
            let out = run_campaign(
                &[
                    "--checkpoint-out",
                    ckpt.to_str().unwrap(),
                    "--checkpoint-every",
                    "1",
                    "--halt-after-windows",
                    "2",
                ],
                campaign_args(&resumed, format, "77", threads_before),
            );
            assert!(
                out.status.success(),
                "{}",
                String::from_utf8_lossy(&out.stderr)
            );
            assert!(
                String::from_utf8_lossy(&out.stderr).contains("halted after 2 windows"),
                "halt message missing"
            );
            // Resume with a different thread count and finish.
            let out = run_campaign(
                &["--resume-from", ckpt.to_str().unwrap()],
                campaign_args(&resumed, format, "77", threads_after),
            );
            assert!(
                out.status.success(),
                "{}",
                String::from_utf8_lossy(&out.stderr)
            );
            let resumed_bytes = std::fs::read(&resumed).expect("resumed output written");
            assert_eq!(
                resumed_bytes, reference_bytes,
                "resume diverged ({format}, {threads_before}→{threads_after} threads)"
            );
            std::fs::remove_file(&resumed).ok();
            std::fs::remove_file(&ckpt).ok();
        }
        std::fs::remove_file(&reference).ok();
    }
}

#[test]
fn resume_salvages_a_torn_tmp_like_a_killed_process_leaves() {
    let reference = temp_path("kill_ref.jsonl");
    let out = run_campaign(&[], campaign_args(&reference, "json", "31", "2"));
    assert!(out.status.success());
    let reference_bytes = std::fs::read(&reference).expect("reference written");

    let resumed = temp_path("kill_res.jsonl");
    let ckpt = temp_path("kill_ckpt");
    let out = run_campaign(
        &[
            "--checkpoint-out",
            ckpt.to_str().unwrap(),
            "--halt-after-windows",
            "2",
        ],
        campaign_args(&resumed, "json", "31", "2"),
    );
    assert!(out.status.success());
    // A kill -9 mid-run leaves the records in `<out>.tmp` (the atomic
    // write never renamed) — recreate that state from the halted run's
    // published file.
    let tmp = PathBuf::from(format!("{}.tmp", resumed.display()));
    std::fs::rename(&resumed, &tmp).expect("simulate torn output");
    let out = run_campaign(
        &["--resume-from", ckpt.to_str().unwrap()],
        campaign_args(&resumed, "json", "31", "3"),
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(std::fs::read(&resumed).unwrap(), reference_bytes);
    assert!(!tmp.exists(), "salvaged tmp must be consumed");
    std::fs::remove_file(&reference).ok();
    std::fs::remove_file(&resumed).ok();
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn resume_with_wrong_seed_is_refused() {
    let out_file = temp_path("wrong_seed.jsonl");
    let ckpt = temp_path("wrong_seed_ckpt");
    let out = run_campaign(
        &[
            "--checkpoint-out",
            ckpt.to_str().unwrap(),
            "--halt-after-windows",
            "1",
        ],
        campaign_args(&out_file, "json", "42", "2"),
    );
    assert!(out.status.success());
    let out = run_campaign(
        &["--resume-from", ckpt.to_str().unwrap()],
        campaign_args(&out_file, "json", "43", "2"), // seed changed
    );
    assert!(!out.status.success(), "wrong seed must be refused");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("config mismatch"),
        "typed refusal expected, got: {stderr}"
    );
    std::fs::remove_file(&out_file).ok();
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn resume_with_changed_config_is_refused() {
    let out_file = temp_path("wrong_cfg.jsonl");
    let ckpt = temp_path("wrong_cfg_ckpt");
    let out = run_campaign(
        &[
            "--checkpoint-out",
            ckpt.to_str().unwrap(),
            "--halt-after-windows",
            "1",
        ],
        campaign_args(&out_file, "json", "42", "2"),
    );
    assert!(out.status.success());
    let mut changed = campaign_args(&out_file, "json", "42", "2");
    let months_at = changed.iter().position(|a| a == "--months").unwrap();
    changed[months_at + 1] = "5".into(); // one more month than the original
    let out = run_campaign(&["--resume-from", ckpt.to_str().unwrap()], changed);
    assert!(!out.status.success(), "changed config must be refused");
    assert!(String::from_utf8_lossy(&out.stderr).contains("config mismatch"));
    std::fs::remove_file(&out_file).ok();
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn corrupt_checkpoint_is_refused() {
    let out_file = temp_path("corrupt.jsonl");
    let ckpt = temp_path("corrupt_ckpt");
    let out = run_campaign(
        &[
            "--checkpoint-out",
            ckpt.to_str().unwrap(),
            "--halt-after-windows",
            "1",
        ],
        campaign_args(&out_file, "json", "42", "2"),
    );
    assert!(out.status.success());
    let mut bytes = std::fs::read(&ckpt).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&ckpt, &bytes).unwrap();
    let out = run_campaign(
        &["--resume-from", ckpt.to_str().unwrap()],
        campaign_args(&out_file, "json", "42", "2"),
    );
    assert!(!out.status.success(), "corrupt checkpoint must be refused");
    assert!(String::from_utf8_lossy(&out.stderr).contains("corrupt checkpoint"));
    std::fs::remove_file(&out_file).ok();
    std::fs::remove_file(&ckpt).ok();
}

#[test]
fn checkpoint_every_without_out_is_an_error() {
    let out_file = temp_path("lonely_every.jsonl");
    let out = run_campaign(
        &["--checkpoint-every", "2"],
        campaign_args(&out_file, "json", "42", "1"),
    );
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--checkpoint-out"));
}

#[test]
fn repro_halt_and_resume_reproduces_the_reference_tables() {
    let reference = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--scale",
            "smoke",
            "--table1",
            "--seed",
            "9",
            "--threads",
            "2",
        ])
        .output()
        .expect("repro runs");
    assert!(reference.status.success());

    let records = temp_path("repro.jsonl");
    let ckpt = temp_path("repro_ckpt");
    let halted = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--scale",
            "smoke",
            "--table1",
            "--seed",
            "9",
            "--threads",
            "2",
        ])
        .args(["--records-out", records.to_str().unwrap()])
        .args(["--checkpoint-out", ckpt.to_str().unwrap()])
        .args(["--halt-after-windows", "3"])
        .output()
        .expect("repro runs");
    assert!(halted.status.success());
    assert!(
        !String::from_utf8_lossy(&halted.stdout).contains("Table I"),
        "halted run must not print tables"
    );

    let resumed = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--scale",
            "smoke",
            "--table1",
            "--seed",
            "9",
            "--threads",
            "4",
        ])
        .args(["--records-out", records.to_str().unwrap()])
        .args(["--resume-from", ckpt.to_str().unwrap()])
        .output()
        .expect("repro runs");
    assert!(
        resumed.status.success(),
        "{}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout)
            .split_once("Table I")
            .map(|(_, t)| t.to_string()),
        String::from_utf8_lossy(&reference.stdout)
            .split_once("Table I")
            .map(|(_, t)| t.to_string()),
        "resumed assessment diverged from the uninterrupted run"
    );
    std::fs::remove_file(&records).ok();
    std::fs::remove_file(&ckpt).ok();
}
