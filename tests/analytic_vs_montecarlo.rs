//! Cross-validation of the two independent implementations of the paper's
//! pipeline: the quadrature-based analytic series (`sramaging::longterm`)
//! and the full Monte-Carlo path (testbed campaign → assessment).
//!
//! Both must agree on every metric at every month within Monte-Carlo
//! tolerance — this is the strongest internal consistency check in the
//! workspace, since the two paths share only the cell/aging primitives.

use sram_puf_longterm::pufassess::{Assessment, EvaluationProtocol};
use sram_puf_longterm::puftestbed::{Campaign, CampaignConfig};
use sram_puf_longterm::sramaging::{analytic_series, BtiModel};
use sram_puf_longterm::sramcell::TechnologyProfile;

#[test]
fn monte_carlo_campaign_tracks_the_analytic_series() {
    let reads = 200u32;
    let boards = 8usize;
    let bits = 4096usize;
    let months = 12u32;

    let config = CampaignConfig {
        boards,
        sram_bits: bits,
        read_bits: bits,
        months,
        reads_per_window: reads,
        ..CampaignConfig::default()
    };
    let profile = config.profile.clone();
    let dataset = Campaign::new(config, 31_415).run_in_memory();
    let assessment = Assessment::from_dataset(
        &dataset,
        &EvaluationProtocol {
            reads_per_window: reads,
            ..EvaluationProtocol::default()
        },
    )
    .unwrap();

    let analytic = analytic_series(
        &profile.population,
        BtiModel::from_profile(&profile),
        3.8 / 5.4,
        months,
        reads,
    );

    // Tolerances: per-month cross-device means over boards*bits cells. The
    // WCHD mean pools 8×4096 Bernoulli cells → σ ≈ sqrt(p/N) ≈ 0.001; use
    // 5-sigma-ish bands. Entropy and stable-ratio estimators carry extra
    // finite-window bias, so their bands are wider.
    for aggregate in assessment.aggregates() {
        let month = aggregate.month_index as usize;
        let expected = &analytic[month];
        assert!(
            (aggregate.wchd.mean - expected.wchd).abs() < 0.004,
            "month {month}: MC wchd {:.4} vs analytic {:.4}",
            aggregate.wchd.mean,
            expected.wchd
        );
        assert!(
            (aggregate.fhw.mean - expected.fhw).abs() < 0.01,
            "month {month}: MC fhw {:.4} vs analytic {:.4}",
            aggregate.fhw.mean,
            expected.fhw
        );
        assert!(
            (aggregate.noise_entropy.mean - expected.noise_entropy).abs() < 0.008,
            "month {month}: MC noise entropy {:.4} vs analytic {:.4}",
            aggregate.noise_entropy.mean,
            expected.noise_entropy
        );
        assert!(
            (aggregate.stable_ratio.mean - expected.stable_ratio).abs() < 0.02,
            "month {month}: MC stable {:.4} vs analytic {:.4}",
            aggregate.stable_ratio.mean,
            expected.stable_ratio
        );
        assert!(
            (aggregate.bchd.mean - expected.bchd).abs() < 0.02,
            "month {month}: MC bchd {:.4} vs analytic {:.4}",
            aggregate.bchd.mean,
            expected.bchd
        );
    }
}

#[test]
fn disabled_aging_freezes_the_monte_carlo_campaign() {
    // Ablation consistency: a zero-prefactor profile must show no trend in
    // the Monte-Carlo path either.
    let mut profile = TechnologyProfile::atmega32u4();
    profile.bti_prefactor = 0.0;
    let reads = 100u32;
    let config = CampaignConfig {
        boards: 4,
        sram_bits: 4096,
        read_bits: 4096,
        months: 12,
        reads_per_window: reads,
        profile,
        ..CampaignConfig::default()
    };
    let dataset = Campaign::new(config, 2_718).run_in_memory();
    let assessment = Assessment::from_dataset(
        &dataset,
        &EvaluationProtocol {
            reads_per_window: reads,
            ..EvaluationProtocol::default()
        },
    )
    .unwrap();
    let first = &assessment.aggregates()[0];
    let last = assessment.aggregates().last().unwrap();
    // Only Monte-Carlo jitter, no trend.
    assert!(
        (last.wchd.mean - first.wchd.mean).abs() < 0.002,
        "frozen wchd drifted: {:.4} → {:.4}",
        first.wchd.mean,
        last.wchd.mean
    );
    assert!((last.stable_ratio.mean - first.stable_ratio.mean).abs() < 0.01);
}
