//! Integration: the two §II-A applications (key generation, TRNG) running
//! against devices aged by the testbed rig.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sram_puf_longterm::pufkeygen::{KeyError, KeyGenerator};
use sram_puf_longterm::puftestbed::{BoardId, SlaveBoard};
use sram_puf_longterm::puftrng::{SramTrng, TrngConfig};
use sram_puf_longterm::sramcell::TechnologyProfile;

#[test]
fn keys_enrolled_on_fresh_boards_survive_the_campaign_span() {
    let profile = TechnologyProfile::atmega32u4();
    let mut rng = StdRng::seed_from_u64(7001);
    let generator = KeyGenerator::paper_default();

    for board_idx in 0..4u8 {
        let mut board = SlaveBoard::new(BoardId(board_idx), &profile, 8192, 8192, &mut rng);
        let enrollment = generator
            .enroll(&board.power_cycle(&mut rng), &mut rng)
            .expect("1 KB read-out carries enough material");
        board.age(2.0, 24); // the paper's two years
        for attempt in 0..5 {
            let key = generator
                .reconstruct(&board.power_cycle(&mut rng), &enrollment.helper)
                .unwrap_or_else(|e| panic!("board {board_idx} attempt {attempt}: {e}"));
            assert_eq!(key, enrollment.key);
        }
    }
}

#[test]
fn cross_board_reconstruction_always_fails() {
    let profile = TechnologyProfile::atmega32u4();
    let mut rng = StdRng::seed_from_u64(7002);
    let generator = KeyGenerator::paper_default();
    let mut enroll_board = SlaveBoard::new(BoardId(0), &profile, 8192, 8192, &mut rng);
    let mut other_board = SlaveBoard::new(BoardId(1), &profile, 8192, 8192, &mut rng);
    let enrollment = generator
        .enroll(&enroll_board.power_cycle(&mut rng), &mut rng)
        .unwrap();
    for _ in 0..5 {
        let err = generator
            .reconstruct(&other_board.power_cycle(&mut rng), &enrollment.helper)
            .expect_err("a different device must never reconstruct the key");
        assert_eq!(err, KeyError::CheckMismatch);
    }
}

#[test]
fn trng_from_an_aged_board_is_healthy_and_faster() {
    let profile = TechnologyProfile::atmega32u4();
    let mut rng = StdRng::seed_from_u64(7003);
    let mut board = SlaveBoard::new(BoardId(0), &profile, 8192, 8192, &mut rng);
    let config = TrngConfig::default();

    let fresh =
        SramTrng::characterize(board.sram().clone(), &config, &mut rng).expect("fresh source");
    board.age(2.0, 24);
    let mut aged =
        SramTrng::characterize(board.sram().clone(), &config, &mut rng).expect("aged source");

    // §IV-D2: the aged device needs no more power-ups per byte than the
    // fresh one (usually strictly fewer).
    assert!(aged.readouts_per_byte() <= fresh.readouts_per_byte() * 1.02);

    let bytes = aged.generate(256, &mut rng).expect("healthy generation");
    assert_eq!(bytes.len(), 256);
    assert_eq!(aged.monitor().alarms(), 0);
}

#[test]
fn key_material_requirements_scale_with_repetition() {
    let profile = TechnologyProfile::atmega32u4();
    let mut rng = StdRng::seed_from_u64(7004);
    let board = SlaveBoard::new(BoardId(0), &profile, 4096, 4096, &mut rng);
    let mut b = board;
    let response = b.power_cycle(&mut rng);
    // Repetition-3 fits in a 4 KiBit response; repetition-9 does not
    // (11 Golay blocks × 23 bits × 9 ≈ 2 277 debiased bits needed, but a
    // 4 096-bit biased response yields only ~950).
    assert!(KeyGenerator::new(128, 3)
        .enroll(&response, &mut rng)
        .is_ok());
    let err = KeyGenerator::new(128, 9)
        .enroll(&response, &mut rng)
        .unwrap_err();
    assert!(matches!(err, KeyError::InsufficientMaterial { .. }));
}
