//! End-to-end integration: simulated rig → record stream → evaluation
//! protocol → Table I, asserting the *shape* of the paper's results.

use sram_puf_longterm::pufassess::{Assessment, EvaluationProtocol};
use sram_puf_longterm::puftestbed::{BoardId, Campaign, CampaignConfig};

fn campaign_config(months: u32) -> CampaignConfig {
    CampaignConfig {
        boards: 8,
        sram_bits: 4096,
        read_bits: 4096,
        months,
        reads_per_window: 100,
        ..CampaignConfig::default()
    }
}

fn protocol() -> EvaluationProtocol {
    EvaluationProtocol {
        reads_per_window: 100,
        ..EvaluationProtocol::default()
    }
}

#[test]
fn two_year_campaign_reproduces_table1_shape() {
    let dataset = Campaign::new(campaign_config(24), 424).run_in_memory();
    let assessment = Assessment::from_dataset(&dataset, &protocol()).unwrap();
    let table = assessment.table1();

    // Start column: the calibrated model must land on the paper's values.
    assert!(
        (table.wchd.start_avg - 0.0249).abs() < 0.004,
        "start WCHD {:.4} vs paper 0.0249",
        table.wchd.start_avg
    );
    assert!(
        (table.hw.start_avg - 0.627).abs() < 0.02,
        "start HW {:.4} vs paper 0.627",
        table.hw.start_avg
    );
    assert!(
        (table.bchd.start_avg - 0.468).abs() < 0.02,
        "start BCHD {:.4} vs paper 0.4679",
        table.bchd.start_avg
    );
    assert!(
        (table.noise.start_avg - 0.0305).abs() < 0.012,
        "start noise entropy {:.4} vs paper 0.0305",
        table.noise.start_avg
    );
    assert!(
        (table.stable.start_avg - 0.859).abs() < 0.05,
        "start stable ratio {:.4} vs paper 0.859",
        table.stable.start_avg
    );
    assert!(
        (table.puf_entropy_start - 0.649).abs() < 0.06,
        "start PUF entropy {:.4} vs paper 0.6492",
        table.puf_entropy_start
    );

    // Trends: who moves, in which direction, by roughly what factor.
    let wchd_rel = table.wchd.relative_change();
    assert!(
        (0.08..=0.35).contains(&wchd_rel),
        "WCHD relative change {wchd_rel:.3} vs paper +0.193"
    );
    // NOTE: the empirical noise-entropy estimator is window-size sensitive:
    // marginally unstable cells are invisible until their flip probability
    // crosses ~1/reads, so short windows (100 reads here vs the paper's
    // 1 000) amplify the measured relative change. The paper-protocol value
    // (~+0.19 at 1 000 reads) is verified by the full-scale reproduction
    // recorded in EXPERIMENTS.md; here only the direction and rough size
    // are asserted.
    let noise_rel = table.noise.relative_change();
    assert!(
        (0.05..=0.60).contains(&noise_rel),
        "noise entropy relative change {noise_rel:.3} vs paper +0.193"
    );
    let stable_rel = table.stable.relative_change();
    assert!(
        (-0.06..=-0.005).contains(&stable_rel),
        "stable-cell relative change {stable_rel:.3} vs paper -0.0249"
    );
    assert!(table.hw.is_negligible(), "HW change must be negligible");
    assert!(table.bchd.is_negligible(), "BCHD change must be negligible");
    let puf_rel = (table.puf_entropy_end / table.puf_entropy_start - 1.0).abs();
    assert!(
        puf_rel < 0.01,
        "PUF entropy change {puf_rel:.4} not negligible"
    );
}

#[test]
fn monthly_rate_matches_paper_within_tolerance() {
    let dataset = Campaign::new(campaign_config(24), 425).run_in_memory();
    let table = Assessment::from_dataset(&dataset, &protocol())
        .unwrap()
        .table1();
    let monthly = table.wchd.monthly_change(24);
    assert!(
        (0.004..=0.011).contains(&monthly),
        "monthly WCHD change {monthly:.4} vs paper 0.0074"
    );
}

#[test]
fn wchd_growth_decelerates_like_fig6a() {
    let dataset = Campaign::new(campaign_config(24), 426).run_in_memory();
    let assessment = Assessment::from_dataset(&dataset, &protocol()).unwrap();
    let series = assessment.aggregates();
    let first_year = series[12].wchd.mean - series[0].wchd.mean;
    let second_year = series[24].wchd.mean - series[12].wchd.mean;
    assert!(
        first_year > second_year,
        "first year {first_year:.4} must outpace second year {second_year:.4}"
    );
}

#[test]
fn every_device_line_trends_the_same_way() {
    // Fig. 6a/6c plot one line per device; each individual device must show
    // the aging trend, not only the average.
    let dataset = Campaign::new(campaign_config(24), 427).run_in_memory();
    let assessment = Assessment::from_dataset(&dataset, &protocol()).unwrap();
    for device in assessment.devices() {
        let series = assessment.device_series(device);
        let first = series.first().unwrap();
        let last = series.last().unwrap();
        assert!(
            last.wchd > first.wchd,
            "device {device}: wchd {:.4} → {:.4}",
            first.wchd,
            last.wchd
        );
        assert!(
            last.noise_entropy > first.noise_entropy,
            "device {device}: noise entropy must rise"
        );
    }
}

#[test]
fn dropped_boards_do_not_corrupt_the_assessment() {
    // Fault-injected transport: some read-outs are lost, but everything
    // recorded remains consistent and assessable.
    let config = CampaignConfig {
        i2c_nack_rate: 0.05,
        i2c_retries: 0,
        months: 2,
        ..campaign_config(2)
    };
    let dataset = Campaign::new(config, 428).run_in_memory();
    assert!(dataset.summary().dropped > 0);
    let assessment = Assessment::from_dataset(&dataset, &protocol()).unwrap();
    assert_eq!(assessment.months(), 3);
    // Windows are smaller than requested but metrics stay in range.
    let m0 = &assessment.aggregates()[0];
    assert!(m0.wchd.mean < 0.05);
}

#[test]
fn device_identities_stay_distinguishable_after_aging() {
    let dataset = Campaign::new(campaign_config(24), 429).run_in_memory();
    let assessment = Assessment::from_dataset(&dataset, &protocol()).unwrap();
    let last = assessment.aggregates().last().unwrap();
    // Worst pair of aged devices still far from the within-class band.
    assert!(
        last.bchd.min > 0.35,
        "aged devices must stay unique: min BCHD {:.3}",
        last.bchd.min
    );
    let _ = BoardId(0); // silence unused import at smaller configs
}
