//! Integration: campaign records persisted to a JSON-lines file on disk and
//! replayed into an identical assessment — the Raspberry-Pi database path
//! of the paper's Fig. 2.

use sram_puf_longterm::pufassess::{Assessment, EvaluationProtocol};
use sram_puf_longterm::puftestbed::store::{read_json_lines, JsonLinesSink};
use sram_puf_longterm::puftestbed::{Campaign, CampaignConfig};
use std::fs::File;
use std::io::{BufReader, BufWriter};

#[test]
fn campaign_streams_to_disk_and_replays_identically() {
    let config = CampaignConfig {
        boards: 3,
        sram_bits: 1024,
        read_bits: 1024,
        months: 2,
        reads_per_window: 25,
        ..CampaignConfig::default()
    };
    let protocol = EvaluationProtocol {
        reads_per_window: 25,
        ..EvaluationProtocol::default()
    };

    let path = std::env::temp_dir().join(format!(
        "sram_puf_longterm_records_{}.jsonl",
        std::process::id()
    ));

    // Stream the campaign straight to disk.
    let mut campaign = Campaign::new(config.clone(), 9001);
    let file = File::create(&path).expect("create temp record file");
    let mut sink = JsonLinesSink::new(BufWriter::new(file));
    let summary = campaign.run(&mut sink).expect("write records");
    sink.into_inner()
        .expect("flush")
        .into_inner()
        .expect("flush buffer");
    assert_eq!(summary.records, 3 * 3 * 25);

    // Replay from disk.
    let reader = BufReader::new(File::open(&path).expect("reopen"));
    let records: Vec<_> = read_json_lines(reader)
        .collect::<Result<_, _>>()
        .expect("every persisted line parses");
    assert_eq!(records.len() as u64, summary.records);

    let replayed = Assessment::from_records(&records, &protocol).expect("assessable");

    // An identically seeded in-memory run must agree exactly.
    let direct_dataset = Campaign::new(config, 9001).run_in_memory();
    let direct = Assessment::from_dataset(&direct_dataset, &protocol).unwrap();
    assert_eq!(replayed, direct);

    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupted_lines_are_reported_not_swallowed() {
    let good = sram_puf_longterm::puftestbed::Record::new(
        sram_puf_longterm::puftestbed::BoardId(0),
        0,
        sram_puf_longterm::puftestbed::Timestamp(0),
        sram_puf_longterm::pufbits::BitVec::from_bytes(&[0xAA]),
    )
    .to_json_line();
    let stream = format!("{good}\nnot json at all\n{good}\n");
    let results: Vec<_> = read_json_lines(stream.as_bytes()).collect();
    assert_eq!(results.len(), 3);
    assert!(results[0].is_ok());
    assert!(results[1].is_err());
    assert!(results[2].is_ok());
}
