//! Facade crate for the SRAM PUF long-term assessment workspace.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can address the whole system. See the individual crates
//! for the substantive documentation:
//!
//! * [`pufbits`] — packed bit vectors and Hamming-space utilities.
//! * [`pufobs`] — counters, gauges, latency histograms, progress rendering.
//! * [`pufstats`] — histograms, descriptive statistics, entropy estimators.
//! * [`sramcell`] — 6T SRAM cell power-up model and technology profiles.
//! * [`sramaging`] — NBTI/PBTI aging under nominal and accelerated stress.
//! * [`puftestbed`] — the simulated measurement rig of the paper's Fig. 2.
//! * [`pufassess`] — the paper's evaluation protocols (the core contribution).
//! * [`pufkeygen`] — fuzzy-extractor key generation on top of the PUF.
//! * [`puftrng`] — true random number generation from SRAM noise.

pub use pufassess;
pub use pufbits;
pub use pufkeygen;
pub use pufobs;
pub use pufstats;
pub use puftestbed;
pub use puftrng;
pub use sramaging;
pub use sramcell;
