//! Vendored, self-contained subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so the benchmark harness
//! surface the workspace uses (`criterion_group!`/`criterion_main!`,
//! `Criterion::benchmark_group`, `Bencher::iter`/`iter_batched`,
//! `Throughput`, `BatchSize`) is provided here over a simple
//! warmup-then-sample timer that reports the median iteration time and, when
//! a throughput was declared, derived elements/second.
//!
//! There is no statistical outlier analysis, HTML report, or baseline
//! comparison — output is one summary line per benchmark on stdout, which is
//! what the ISSUE's before/after timing comparisons need.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much work one pass of a benchmark routine represents.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements.
    Elements(u64),
    /// The routine processes this many bytes.
    Bytes(u64),
}

/// How expensive `iter_batched` setup values are to hold in memory; the
/// upstream distinction (batch sizing) does not change behaviour here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 30,
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            sample_size: 0,
            throughput: None,
            sample_size_override: false,
        }
    }

    /// Benchmarks a routine outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.sample_size;
        let warm_up = self.warm_up_time;
        run_benchmark(id, None, sample_size, warm_up, f);
        self
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
    sample_size_override: bool,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self.sample_size_override = true;
        self
    }

    /// Declares the work per routine pass, enabling rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks one routine in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = if self.sample_size_override {
            self.sample_size
        } else {
            self.criterion.sample_size
        };
        run_benchmark(
            id,
            self.throughput,
            sample_size,
            self.criterion.warm_up_time,
            f,
        );
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; drives the timed routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also estimates a per-sample iteration count so that very
        // fast routines are timed in batches the clock can resolve.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up_time.as_secs_f64() / warm_iters.max(1) as f64;
        let iters_per_sample = ((1e-3 / per_iter.max(1e-12)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().div_f64(iters_per_sample as f64));
        }
    }

    /// Times `routine` over fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine(setup()));
        }

        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    warm_up_time: Duration,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
        warm_up_time,
    };
    f(&mut bencher);
    let median = bencher.median();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  {:.3e} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  {:.3e} B/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("  {id:<44} median {median:>12.3?}{rate}");
}

/// Declares a benchmark entry point running each listed target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a benchmark binary from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (`--bench`,
            // filters); this minimal harness runs everything unconditionally
            // but must still swallow the arguments. Respect `--test`-style
            // smoke invocation by running nothing when asked to list.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| b.iter(|| (0u64..64).sum::<u64>()));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, target);

    #[test]
    fn harness_runs_to_completion() {
        benches();
    }
}
