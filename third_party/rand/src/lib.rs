//! Vendored, self-contained subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` features the simulator actually uses are provided
//! here behind the same paths and signatures (`Rng`, `SeedableRng`,
//! `rngs::StdRng`). The generator behind [`rngs::StdRng`] is xoshiro256**
//! seeded through SplitMix64 — not the upstream ChaCha12 — so bitstreams
//! differ from upstream `rand`, which this workspace explicitly permits:
//! the reproducibility contract is on metrics, not bitstreams (see
//! DESIGN.md).

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of raw 32/64-bit words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution (uniform for
    /// integers, `[0, 1)` for floats, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
        f64::sample(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from an RNG with their standard distribution.
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Standard, B: Standard> Standard for (A, B) {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (A::sample(rng), B::sample(rng))
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Widening-multiply bounded sample; bias is < span / 2^64,
                // far below anything the statistical tests can resolve.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (start as i128 + hi) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + (end - start) * f64::sample(rng)
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanded via SplitMix64 — the
    /// conventional seeding scheme for the xoshiro family.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence (also used for seed expansion).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256** (Blackman & Vigna),
    /// 256-bit state, passes BigCrush, sub-nanosecond per draw.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            // A xoshiro state of all zeros is a fixed point; fall back to a
            // SplitMix64 expansion of zero instead.
            if s == [0; 4] {
                let mut sm = 0u64;
                for word in &mut s {
                    *word = splitmix64(&mut sm);
                }
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn uniform_float_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.002, "var {var}");
    }

    #[test]
    fn ranges_hit_their_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..1000 {
            let x = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(0u8..=3);
            assert!(i <= 3);
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(4);
        let ones = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4500..5500).contains(&ones), "{ones}");
    }
}
