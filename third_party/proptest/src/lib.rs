//! Vendored, self-contained subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so this crate provides the
//! property-testing surface the workspace's test suites use — `proptest!`,
//! `prop_assert*`, `prop_assume!`, `any`, numeric-range strategies,
//! `prop::collection::{vec, btree_set}`, `.prop_map`, and a printable-string
//! strategy — on top of the vendored `rand` crate.
//!
//! Differences from upstream are deliberate and small: cases are generated
//! from a deterministic per-test seed (derived from the test name, or
//! `PROPTEST_SEED` if set), there is no shrinking, and failing inputs are
//! printed in full instead of being persisted to a regression file.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Per-block runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Why a generated case did not produce a verdict.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!`.
    Reject,
}

/// A source of generated values.
///
/// Unlike upstream there is no shrink tree: a strategy is just a seeded
/// sampler.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Debug + Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut StdRng) -> Self {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Strategy over a type's whole domain.
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A size specification for collection strategies: an exact length or a
/// (half-open or inclusive) range of lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Strings drawn from `proptest`-style regex patterns.
///
/// Only the shapes the workspace actually uses are understood: a char-class
/// pattern with an optional `{lo,hi}` length suffix (e.g. `"\\PC{0,60}"`,
/// printable-only strings up to 60 chars). Anything else falls back to the
/// printable pool with the parsed (or default `0..=16`) length range.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        // Printable (non-control) pool: mostly ASCII, with multibyte and
        // JSON-hostile characters mixed in to exercise escaping paths.
        const POOL: &[char] = &[
            'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '9', ' ', '!', '"', '\\', '/', '\'', '<',
            '>', '{', '}', '[', ']', ':', ',', '.', '-', '_', '~', '`', '|', '@', '#', '%', 'é',
            'ß', 'λ', 'Ж', '中', '✓', '🦀',
        ];
        let (lo, hi) = parse_length_suffix(self).unwrap_or((0, 16));
        let len = rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| POOL[rng.gen_range(0..POOL.len())])
            .collect()
    }
}

fn parse_length_suffix(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_suffix('}')?;
    let open = body.rfind('{')?;
    let (lo, hi) = body[open + 1..].split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

pub mod collection {
    //! Collection strategies.

    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use std::collections::BTreeSet;
    use std::fmt::Debug;

    /// `Vec` strategy with per-element strategy and size spec.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for `Vec<S::Value>` with `size` elements.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet` strategy with per-element strategy and size spec.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for `BTreeSet<S::Value>` with `size` distinct elements.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Duplicates don't grow the set; bound the retries so a target
            // larger than the element domain still terminates.
            let mut budget = target * 20 + 32;
            while set.len() < target && budget > 0 {
                set.insert(self.element.generate(rng));
                budget -= 1;
            }
            set
        }
    }
}

/// The `prop::` paths used by test code (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

/// Derives the deterministic per-test seed: `PROPTEST_SEED` if set, else an
/// FNV-1a hash of the test path.
pub fn case_seed(test_name: &str) -> u64 {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = seed.parse() {
            return seed;
        }
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Runner used by the expansion of [`proptest!`]; not public API.
pub fn run_cases(
    config: &ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
) {
    let mut rng = StdRng::seed_from_u64(case_seed(test_name));
    let mut executed = 0u32;
    let mut rejected = 0u32;
    while executed < config.cases {
        match case(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                let limit = config.cases.saturating_mul(20).max(256);
                assert!(
                    rejected < limit,
                    "{test_name}: too many prop_assume! rejections ({rejected})"
                );
            }
        }
    }
}

/// Declares property tests over generated inputs.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]   // optional
///     #[test]
///     fn name(pat in strategy, pat in strategy, ...) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __name = concat!(module_path!(), "::", stringify!($name));
            $crate::run_cases(&__config, __name, |__rng| {
                $(let $pat = {
                    let __strategy = $strat;
                    $crate::Strategy::generate(&__strategy, __rng)
                };)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
}

/// Fails the current case (and test) if the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Fails the current case (and test) if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Fails the current case (and test) if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Discards the current case without failing when the assumption is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    struct Wrapped(Vec<bool>);

    fn wrapped(max_len: usize) -> impl Strategy<Value = Wrapped> {
        prop::collection::vec(any::<bool>(), 0..max_len).prop_map(Wrapped)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 1usize..10, b in any::<bool>()) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            let _ = b;
        }

        #[test]
        fn collections_respect_sizes(
            v in prop::collection::vec(any::<u8>(), 3),
            s in prop::collection::btree_set(0usize..100, 0..=5),
            w in wrapped(40),
        ) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!(s.len() <= 5);
            prop_assert!(w.0.len() < 40);
        }

        #[test]
        fn tuples_and_assume((a, b) in any::<(bool, bool)>()) {
            prop_assume!(a || b);
            prop_assert!(a || b);
        }

        #[test]
        fn string_patterns_bound_length(s in "\\PC{0,60}") {
            prop_assert!(s.chars().count() <= 60);
            prop_assert!(!s.chars().any(|c| c.is_control()));
        }
    }

    #[test]
    fn seed_is_stable_per_name() {
        assert_eq!(crate::case_seed("a::b"), crate::case_seed("a::b"));
        assert_ne!(crate::case_seed("a::b"), crate::case_seed("a::c"));
    }
}
